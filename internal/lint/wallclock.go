package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
	"strconv"
)

// WallClock proves that the simulation and emulation engines never read
// the wall clock directly: every time source must flow through
// internal/vclock (usually via a package-level hook like emu's now()).
// A direct time.Now in round logic silently breaks virtual-clock replay —
// the sim engine would advance by real elapsed time instead of simulated
// time, and the divergence only shows up as flaky soak results.
//
// The proof is transitive: a scope-package function that calls an
// out-of-scope module helper whose body (or whose callees' bodies) reads
// the wall clock is reported at the original call site. internal/vclock
// itself is the sanctioned sink and is never descended into; other
// scope packages are analyzed in their own right.
//
// Findings for time.Now, time.Since, and time.Sleep carry byte-offset
// TextEdits when the package declares the corresponding hook
// (func now() time.Time / func sleep(time.Duration)), so `cmfl-vet -fix`
// can rewrite them mechanically.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "sim and emu must read time through the internal/vclock hook, never the wall clock",
	Run:  runWallClock,
}

// WallClockPackages are the virtual-clock domains. (Var, not const:
// fixture tests extend it.)
var WallClockPackages = map[string]bool{
	"cmfl/internal/sim": true,
	"cmfl/internal/emu": true,
}

// vclockPath is the sanctioned time source; calls into it are the goal
// state, recorded as "hook-read" facts.
const vclockPath = "cmfl/internal/vclock"

// bannedTimeFuncs are the package-level time functions that read or
// schedule against the wall clock.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// timeWitness is the first wall-clock read found beneath a function.
type timeWitness struct {
	fn   *types.Func // the banned time.* function
	pos  string      // file:line of the banned call
	hops []string    // call chain from the scope function, outermost first
}

func runWallClock(pass *Pass) {
	if !WallClockPackages[pass.Pkg.Path] {
		return
	}
	w := &wallClockWalker{
		pass:     pass,
		memo:     make(map[*types.Func]*timeWitness),
		visiting: make(map[*types.Func]bool),
		hasNow:   pkgHasHook(pass.Pkg, "now", 0),
		hasSleep: pkgHasHook(pass.Pkg, "sleep", 1),
	}
	scanned := 0
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.scanScopeFunc(fd)
			scanned++
		}
	}
	if scanned > 0 {
		pass.Facts.Clocks = append(pass.Facts.Clocks, ClockFact{Kind: "scope", Count: scanned})
	}
}

// pkgHasHook reports whether the package declares a package-level function
// hook with the given name and arity (the shape the fix engine rewrites to).
func pkgHasHook(pkg *Package, name string, params int) bool {
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == params
}

type wallClockWalker struct {
	pass     *Pass
	memo     map[*types.Func]*timeWitness // out-of-scope callee -> first wall-clock read beneath it (nil = clean)
	visiting map[*types.Func]bool         // cycle guard for the transitive scan
	hasNow   bool
	hasSleep bool
}

// scanScopeFunc walks one scope-package function body — including function
// literals and go statements, which the module call graph deliberately
// attributes elsewhere — and reports every path to the wall clock.
func (w *wallClockWalker) scanScopeFunc(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(w.pass.Pkg, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "time" && bannedTimeFuncs[fn.Name()]:
			w.reportDirect(fd, call, fn)
		case fn.Pkg().Path() == vclockPath:
			pos := w.pass.Fset().Position(call.Pos())
			w.pass.Facts.Clocks = append(w.pass.Facts.Clocks, ClockFact{
				Kind: "hook-read", Func: fd.Name.Name,
				File: pos.Filename, Line: pos.Line, Column: pos.Column,
			})
		default:
			if wit := w.witnessFor(fn); wit != nil {
				w.pass.Reportf(call.Pos(), "%s calls %s, which reaches %s (%s via %s): route time through the internal/vclock hook",
					fd.Name.Name, fn.Name(), wit.fn.FullName(), wit.pos, chain(wit.hops))
			}
		}
		return true
	})
}

// reportDirect reports a wall-clock read in a scope package itself,
// attaching a mechanical rewrite when the package has the matching hook.
func (w *wallClockWalker) reportDirect(fd *ast.FuncDecl, call *ast.CallExpr, fn *types.Func) {
	var edits []TextEdit
	var fixNote string
	switch {
	case fn.Name() == "Now" && w.hasNow:
		edits = []TextEdit{w.pass.EditFor(call, "now()")}
		fixNote = " (fixable: now())"
	case fn.Name() == "Since" && w.hasNow && len(call.Args) == 1:
		edits = []TextEdit{w.pass.EditFor(call, "now().Sub("+w.render(call.Args[0])+")")}
		fixNote = " (fixable: now().Sub)"
	case fn.Name() == "Sleep" && w.hasSleep && len(call.Args) == 1:
		edits = []TextEdit{w.pass.EditFor(call, "sleep("+w.render(call.Args[0])+")")}
		fixNote = " (fixable: sleep())"
	}
	w.pass.ReportEdits(call.Pos(), edits, "%s calls time.%s directly: the %s package must read time through the internal/vclock hook%s",
		fd.Name.Name, fn.Name(), w.pass.Pkg.Types.Name(), fixNote)
}

// witnessFor finds the first wall-clock read beneath an out-of-scope
// module function, memoized across the pass. vclock is the sanctioned
// sink; other scope packages are scanned in their own right. Both are
// barriers.
func (w *wallClockWalker) witnessFor(fn *types.Func) *timeWitness {
	if fn.Pkg().Path() == vclockPath || WallClockPackages[fn.Pkg().Path()] {
		return nil
	}
	if wit, ok := w.memo[fn]; ok {
		return wit
	}
	if w.visiting[fn] {
		return nil // recursion cycle; the entry point will find any witness
	}
	decl, declPkg := w.pass.Mod.FuncDecl(fn)
	if decl == nil || decl.Body == nil {
		w.memo[fn] = nil
		return nil
	}
	w.visiting[fn] = true
	defer delete(w.visiting, fn)

	var found *timeWitness
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(declPkg, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if callee.Pkg().Path() == "time" && bannedTimeFuncs[callee.Name()] {
			pos := w.pass.Fset().Position(call.Pos())
			found = &timeWitness{fn: callee, pos: shortFile(pos.Filename) + ":" + strconv.Itoa(pos.Line), hops: []string{fn.Name()}}
			return false
		}
		if wit := w.witnessFor(callee); wit != nil {
			found = &timeWitness{fn: wit.fn, pos: wit.pos, hops: append([]string{fn.Name()}, wit.hops...)}
			return false
		}
		return true
	})
	w.memo[fn] = found
	return found
}

func (w *wallClockWalker) render(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, w.pass.Fset(), e); err != nil {
		return "..."
	}
	return buf.String()
}

func chain(hops []string) string {
	out := ""
	for i, h := range hops {
		if i > 0 {
			out += " -> "
		}
		out += h
	}
	return out
}
