// Package mtl implements a MOCHA-style federated multi-task learning
// substrate (Smith et al., NIPS'17) and the CMFL hook on top of it,
// reproducing the paper's Sec. V-B experiments.
//
// Each client (task) k trains its own linear SVM w_k on private data; the
// tasks are coupled through a relationship matrix Ω via the regulariser
// (λ/2)·tr(W Ω Wᵀ). The default Ω is the mean-regularised choice
// Ω = (I − 11ᵀ/m), which pulls every task toward the task average; Ω can
// optionally be re-learned from the task weights as
// Ω = (WᵀW)^{1/2} / tr((WᵀW)^{1/2}) using the Jacobi eigensolver.
//
// CMFL integration (paper Sec. IV-B "Extensions"): in MOCHA the global
// optimisation state is the task matrix W, so a client judges its update's
// relevance against the previous round's *collaborative* update — the
// average of the task updates aggregated by the server — exactly the
// feedback CMFL uses in single-model FL. Irrelevant Δw_k are withheld.
package mtl

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/fl"
	"cmfl/internal/stats"
	"cmfl/internal/telemetry"
	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// OmegaMode selects how the relationship matrix evolves.
type OmegaMode int

const (
	// OmegaMeanRegularized keeps Ω = I − 11ᵀ/m fixed (tasks pulled to mean).
	OmegaMeanRegularized OmegaMode = iota + 1
	// OmegaLearned periodically re-estimates Ω from the task weights.
	OmegaLearned
)

// Config describes one federated multi-task run.
type Config struct {
	// Clients holds one binary-labelled shard per task (labels 0/1).
	Clients []*dataset.Set
	// TestFraction of each client's samples is held out for evaluation.
	TestFraction float64

	// Lambda weighs the task-relationship regulariser.
	Lambda float64
	// LR is the (constant in the paper: 1e-4) learning-rate schedule.
	LR core.Schedule
	// Epochs is E, local passes per round (paper: 10).
	Epochs int
	// Batch is B, local minibatch size (paper: 3).
	Batch int
	// Rounds is the number of synchronous iterations.
	Rounds int

	// Filter gates task-update uploads; nil means always upload (MOCHA).
	Filter fl.UploadFilter

	// InitScale is the stddev of the random initial task weights (0 =
	// start at zero). A nonzero value mirrors training from random
	// initialisation, giving the accuracy-vs-rounds curve its dynamic
	// range on easily separable tasks.
	InitScale float64

	// Omega selects the relationship-matrix mode (default mean-regularised).
	Omega OmegaMode
	// OmegaEvery re-learns Ω every k rounds in OmegaLearned mode (default 10).
	OmegaEvery int

	// TargetAccuracy stops early when the weighted test accuracy reaches it.
	TargetAccuracy float64
	// Parallelism bounds concurrent task training (default: task count).
	Parallelism int
	Seed        int64

	// Observers receive live telemetry: one telemetry.ClientEvent per task
	// (in task order) followed by one telemetry.RoundEvent per round,
	// emitted synchronously from the engine goroutine.
	Observers []telemetry.Observer
}

// RoundStats records one synchronous MTL round. The communication core is
// the embedded telemetry.RoundEvent (Participants is the task count m;
// Accuracy is the sample-weighted mean test accuracy across tasks).
type RoundStats struct {
	telemetry.RoundEvent

	// MeanRelevance is the client-mean CMFL relevance this round (NaN
	// before feedback exists).
	MeanRelevance float64
}

// Result is the outcome of a Run.
type Result struct {
	History []RoundStats
	// Weights holds the final per-task weight vectors (d features + bias).
	Weights [][]float64
	// SkipCounts counts withheld updates per task over the run.
	SkipCounts []int
	// TaskAccuracies is each task's final test accuracy (the weighted mean
	// of these, by test-set size, is the History accuracy).
	TaskAccuracies []float64
	FilterName     string
}

// FinalAccuracy returns the last round's accuracy.
func (r *Result) FinalAccuracy() float64 {
	if len(r.History) == 0 {
		return math.NaN()
	}
	return r.History[len(r.History)-1].Accuracy
}

// Trace converts the history into a stats.AccuracyTrace.
func (r *Result) Trace() *stats.AccuracyTrace {
	tr := &stats.AccuracyTrace{}
	for _, h := range r.History {
		tr.CumUploads = append(tr.CumUploads, h.CumUploads)
		tr.Accuracy = append(tr.Accuracy, h.Accuracy)
	}
	return tr
}

type task struct {
	train, test *dataset.Set
	rng         *xrand.Stream
}

// Run executes federated multi-task training.
//
//cmfl:deterministic
func Run(cfg Config) (*Result, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	m := len(cfg.Clients)
	dim := cfg.Clients[0].X.Dim(1) + 1 // +1 bias

	tasks := make([]*task, m)
	for k, set := range cfg.Clients {
		rng := xrand.Derive(cfg.Seed, "mtl-task", k)
		tasks[k] = splitTask(set, cfg.TestFraction, rng)
	}

	// W: m rows of dim weights; zero or random per InitScale.
	w := make([][]float64, m)
	for k := range w {
		if cfg.InitScale > 0 {
			w[k] = xrand.Derive(cfg.Seed, "mtl-init", k).NormVec(dim, 0, cfg.InitScale)
		} else {
			w[k] = make([]float64, dim)
		}
	}
	omega := meanRegularizedOmega(m)

	res := &Result{
		SkipCounts: make([]int, m),
		FilterName: "mocha",
	}
	if cfg.Filter != nil {
		res.FilterName = "mocha+" + cfg.Filter.Name()
	}

	feedback := make([]float64, dim) // zero: no feedback yet
	cumUploads := 0
	var cumBytes int64

	type taskResult struct {
		delta     []float64
		upload    bool
		relevance float64
		err       error
	}
	results := make([]taskResult, m)
	sem := make(chan struct{}, cfg.Parallelism)

	for t := 1; t <= cfg.Rounds; t++ {
		lr := cfg.LR.At(t)
		var wg sync.WaitGroup
		for k := 0; k < m; k++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(k int) {
				defer wg.Done()
				defer func() { <-sem }()
				delta := localSolve(tasks[k], w, omega, k, cfg.Lambda, lr, cfg.Epochs, cfg.Batch)
				upload := true
				rel := math.NaN()
				if cfg.Filter != nil {
					dec, err := cfg.Filter.Check(delta, w[k], feedback, t)
					if err != nil {
						results[k] = taskResult{err: err}
						return
					}
					upload = dec.Upload
					rel = dec.Metric
				} else if !core.AllZero(feedback) {
					if r, err := core.Relevance(delta, feedback); err == nil {
						rel = r
					}
				}
				results[k] = taskResult{delta: delta, upload: upload, relevance: rel}
			}(k)
		}
		wg.Wait()

		uploaded := 0
		collab := make([]float64, dim)
		var relSum float64
		relCount := 0
		for k := 0; k < m; k++ {
			r := &results[k]
			if r.err != nil {
				return nil, fmt.Errorf("mtl: round %d task %d: %w", t, k, r.err)
			}
			if !math.IsNaN(r.relevance) {
				relSum += r.relevance
				relCount++
			}
			if r.upload {
				tensor.Axpy(1, r.delta, w[k])
				tensor.Axpy(1, r.delta, collab)
				uploaded++
			} else {
				res.SkipCounts[k]++
			}
		}
		if uploaded > 0 {
			tensor.ScaleVec(1/float64(uploaded), collab)
			feedback = collab
		}
		cumUploads += uploaded
		cumBytes += int64(uploaded)*int64(dim)*8 + int64(m-uploaded)*fl.SkipNotificationBytes

		if cfg.Omega == OmegaLearned && t%cfg.OmegaEvery == 0 {
			if next, err := learnOmega(w); err == nil {
				omega = next
			}
		}

		acc := weightedAccuracy(tasks, w)
		st := RoundStats{
			RoundEvent: telemetry.RoundEvent{
				Engine:         telemetry.EngineMTL,
				Round:          t,
				Participants:   m,
				Uploaded:       uploaded,
				Skipped:        m - uploaded,
				CumUploads:     cumUploads,
				CumUplinkBytes: cumBytes,
				Accuracy:       acc,
			},
			MeanRelevance: math.NaN(),
		}
		if relCount > 0 {
			st.MeanRelevance = relSum / float64(relCount)
		}
		res.History = append(res.History, st)
		if len(cfg.Observers) > 0 {
			for k := 0; k < m; k++ {
				uplink := int64(dim) * 8
				if !results[k].upload {
					uplink = fl.SkipNotificationBytes
				}
				telemetry.EmitClient(cfg.Observers, telemetry.ClientEvent{
					Engine:      telemetry.EngineMTL,
					Round:       t,
					Client:      k,
					Uploaded:    results[k].upload,
					Relevance:   results[k].relevance,
					UplinkBytes: uplink,
				})
			}
			telemetry.EmitRound(cfg.Observers, st.RoundEvent)
		}
		if cfg.TargetAccuracy > 0 && acc >= cfg.TargetAccuracy {
			break
		}
	}

	res.Weights = make([][]float64, m)
	for k := range w {
		res.Weights[k] = append([]float64(nil), w[k]...)
	}
	res.TaskAccuracies = make([]float64, m)
	for k, tk := range tasks {
		res.TaskAccuracies[k] = taskAccuracy(tk, w[k])
	}
	return res, nil
}

// taskAccuracy evaluates one task's model on its held-out split.
func taskAccuracy(tk *task, w []float64) float64 {
	d := len(w) - 1
	correct := 0
	for i := 0; i < tk.test.Len(); i++ {
		row := tk.test.X.Data[i*d : (i+1)*d]
		score := w[d]
		for j, x := range row {
			score += w[j] * x
		}
		pred := 0
		if score >= 0 {
			pred = 1
		}
		if pred == tk.test.Y[i] {
			correct++
		}
	}
	if tk.test.Len() == 0 {
		return math.NaN()
	}
	return float64(correct) / float64(tk.test.Len())
}

// localSolve runs E epochs of subgradient descent on task k's hinge loss
// plus the Ω-coupled regulariser, starting from the broadcast W, and returns
// the delta of w_k.
func localSolve(tk *task, w [][]float64, omega *tensor.Tensor, k int, lambda, lr float64, epochs, batch int) []float64 {
	dim := len(w[k])
	local := append([]float64(nil), w[k]...)
	n := tk.train.Len()
	d := dim - 1
	m := len(w)
	// Regulariser gradient contribution from other tasks is constant during
	// the local solve (their weights are frozen at the broadcast values):
	// λ Σ_{j≠k} Ω_kj w_j. The own-task term λ Ω_kk w_k tracks local.
	regOther := make([]float64, dim)
	for j := 0; j < m; j++ {
		if j == k {
			continue
		}
		tensor.Axpy(lambda*omega.At(k, j), w[j], regOther)
	}
	okk := lambda * omega.At(k, k)

	grad := make([]float64, dim)
	for e := 0; e < epochs; e++ {
		order := tk.rng.Perm(n)
		for lo := 0; lo < n; lo += batch {
			hi := lo + batch
			if hi > n {
				hi = n
			}
			for i := range grad {
				grad[i] = 0
			}
			for _, idx := range order[lo:hi] {
				row := tk.train.X.Data[idx*d : (idx+1)*d]
				y := float64(tk.train.Y[idx])*2 - 1 // {0,1} -> {-1,+1}
				margin := local[d]                  // bias
				for j, x := range row {
					margin += local[j] * x
				}
				if y*margin < 1 {
					for j, x := range row {
						grad[j] -= y * x
					}
					grad[d] -= y
				}
			}
			inv := 1.0 / float64(hi-lo)
			for j := 0; j < dim; j++ {
				g := grad[j]*inv + regOther[j] + okk*local[j]
				local[j] -= lr * g
			}
		}
	}
	return tensor.Sub(local, w[k])
}

// weightedAccuracy is the sample-weighted mean test accuracy across tasks.
func weightedAccuracy(tasks []*task, w [][]float64) float64 {
	correct, total := 0, 0
	for k, tk := range tasks {
		d := len(w[k]) - 1
		for i := 0; i < tk.test.Len(); i++ {
			row := tk.test.X.Data[i*d : (i+1)*d]
			score := w[k][d]
			for j, x := range row {
				score += w[k][j] * x
			}
			pred := 0
			if score >= 0 {
				pred = 1
			}
			if pred == tk.test.Y[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(correct) / float64(total)
}

// meanRegularizedOmega returns Ω = I − 11ᵀ/m.
func meanRegularizedOmega(m int) *tensor.Tensor {
	o := tensor.New(m, m)
	inv := 1.0 / float64(m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			v := -inv
			if i == j {
				v = 1 - inv
			}
			o.Set(i, j, v)
		}
	}
	return o
}

// learnOmega re-estimates Ω = (WᵀW)^{1/2} / tr((WᵀW)^{1/2}) from the task
// weight matrix (tasks as rows).
func learnOmega(w [][]float64) (*tensor.Tensor, error) {
	m, dim := len(w), len(w[0])
	wm := tensor.New(m, dim)
	for k, row := range w {
		copy(wm.Data[k*dim:(k+1)*dim], row)
	}
	gram := tensor.MatMulTransB(wm, wm) // m×m, PSD
	root, err := tensor.SymSqrt(gram)
	if err != nil {
		return nil, err
	}
	tr := tensor.Trace(root)
	if tr <= 1e-12 {
		return nil, errors.New("mtl: degenerate weight matrix, keeping previous Ω")
	}
	root.Scale(1 / tr)
	return root, nil
}

func splitTask(set *dataset.Set, testFraction float64, rng *xrand.Stream) *task {
	n := set.Len()
	nTest := int(float64(n) * testFraction)
	if nTest < 1 {
		nTest = 1
	}
	if nTest >= n {
		nTest = n - 1
	}
	perm := rng.Perm(n)
	return &task{
		train: set.Subset(perm[nTest:]),
		test:  set.Subset(perm[:nTest]),
		rng:   rng,
	}
}

func validate(cfg *Config) error {
	switch {
	case len(cfg.Clients) == 0:
		return errors.New("mtl: at least one task is required")
	case cfg.Epochs <= 0:
		return errors.New("mtl: Epochs must be positive")
	case cfg.Batch <= 0:
		return errors.New("mtl: Batch must be positive")
	case cfg.LR == nil:
		return errors.New("mtl: LR schedule is required")
	case cfg.Rounds <= 0:
		return errors.New("mtl: Rounds must be positive")
	case cfg.Lambda < 0:
		return errors.New("mtl: Lambda must be non-negative")
	}
	d := -1
	for k, set := range cfg.Clients {
		if set == nil || set.Len() < 2 {
			return fmt.Errorf("mtl: task %d needs at least 2 samples", k)
		}
		if len(set.X.Shape) != 2 {
			return fmt.Errorf("mtl: task %d data must be [samples, features]", k)
		}
		if d == -1 {
			d = set.X.Dim(1)
		} else if set.X.Dim(1) != d {
			return fmt.Errorf("mtl: task %d feature dim %d != %d", k, set.X.Dim(1), d)
		}
	}
	if cfg.TestFraction <= 0 || cfg.TestFraction >= 1 {
		cfg.TestFraction = 0.2
	}
	if cfg.Omega == 0 {
		cfg.Omega = OmegaMeanRegularized
	}
	if cfg.OmegaEvery <= 0 {
		cfg.OmegaEvery = 10
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = len(cfg.Clients)
	}
	return nil
}
