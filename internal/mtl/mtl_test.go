package mtl

import (
	"math"
	"testing"

	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/stats"
	"cmfl/internal/xrand"
)

func harConfig(t *testing.T, clients, outliers int) (Config, *dataset.HAR) {
	t.Helper()
	har, err := dataset.GenerateHAR(dataset.HARConfig{
		Clients:       clients,
		Outliers:      outliers,
		Features:      40,
		MinSamples:    20,
		MaxSamples:    60,
		ClassSep:      2.5,
		PersonalScale: 0.2,
		OutlierScale:  1.8,
		Seed:          31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Clients: har.Clients,
		Lambda:  0.01,
		LR:      core.Constant(0.05),
		Epochs:  3,
		Batch:   4,
		Rounds:  20,
		Seed:    32,
	}, har
}

func TestMochaLearnsHAR(t *testing.T) {
	cfg, _ := harConfig(t, 12, 3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.FinalAccuracy(); acc < 0.8 {
		t.Fatalf("MOCHA accuracy = %v, want >= 0.8", acc)
	}
	last := res.History[len(res.History)-1]
	if last.CumUploads != 12*len(res.History) {
		t.Fatalf("plain MOCHA must upload everything: %d of %d", last.CumUploads, 12*len(res.History))
	}
	if res.FilterName != "mocha" {
		t.Fatalf("FilterName = %q", res.FilterName)
	}
}

func TestMochaWithCMFLSavesUploads(t *testing.T) {
	cfg, _ := harConfig(t, 12, 3)
	cfg.Rounds = 25
	cfg.Filter = core.NewFilter(core.Constant(0.5))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := res.History[len(res.History)-1]
	total := 12 * len(res.History)
	if last.CumUploads >= total {
		t.Fatalf("CMFL never filtered: %d of %d uploads", last.CumUploads, total)
	}
	if acc := res.FinalAccuracy(); acc < 0.75 {
		t.Fatalf("MOCHA+CMFL accuracy = %v, want >= 0.75", acc)
	}
	if res.FilterName != "mocha+cmfl" {
		t.Fatalf("FilterName = %q", res.FilterName)
	}
}

func TestOutliersSkipMoreOften(t *testing.T) {
	cfg, har := harConfig(t, 16, 4)
	cfg.Rounds = 30
	cfg.Filter = core.NewFilter(core.Constant(0.55))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	isOutlier := map[int]bool{}
	for _, k := range har.OutlierIdx {
		isOutlier[k] = true
	}
	var outlierSkips, normalSkips, outliers, normals float64
	for k, s := range res.SkipCounts {
		if isOutlier[k] {
			outlierSkips += float64(s)
			outliers++
		} else {
			normalSkips += float64(s)
			normals++
		}
	}
	if outliers == 0 || normals == 0 {
		t.Fatal("bad split")
	}
	if outlierSkips/outliers <= normalSkips/normals {
		t.Fatalf("outliers should be filtered more: outlier mean %.2f vs normal mean %.2f",
			outlierSkips/outliers, normalSkips/normals)
	}
}

func TestLearnedOmegaRuns(t *testing.T) {
	cfg, _ := harConfig(t, 8, 2)
	cfg.Rounds = 12
	cfg.Omega = OmegaLearned
	cfg.OmegaEvery = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.FinalAccuracy(); acc < 0.7 {
		t.Fatalf("learned-Ω accuracy = %v, want >= 0.7", acc)
	}
}

func TestSemeionTask(t *testing.T) {
	sem, err := dataset.Semeion(dataset.SemeionConfig{Samples: 400, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	clients, err := dataset.SplitClients(sem, 5, 40, 100, xrand.New(34))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Clients: clients,
		Lambda:  0.01,
		LR:      core.Constant(0.05),
		Epochs:  3,
		Batch:   4,
		Rounds:  20,
		Seed:    35,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.FinalAccuracy(); acc < 0.85 {
		t.Fatalf("Semeion accuracy = %v, want >= 0.85 (0-vs-rest is imbalanced)", acc)
	}
}

func TestTraceConversion(t *testing.T) {
	cfg, _ := harConfig(t, 6, 1)
	cfg.Rounds = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace()
	if len(tr.CumUploads) != len(res.History) {
		t.Fatalf("trace length %d != history %d", len(tr.CumUploads), len(res.History))
	}
	if _, ok := tr.RoundsToAccuracy(0.5); !ok {
		t.Fatal("trace should reach 50% accuracy")
	}
	var _ *stats.AccuracyTrace = tr
}

func TestEarlyStop(t *testing.T) {
	cfg, _ := harConfig(t, 6, 1)
	cfg.Rounds = 100
	cfg.TargetAccuracy = 0.7
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 100 {
		t.Fatal("did not stop early")
	}
}

func TestValidation(t *testing.T) {
	base, _ := harConfig(t, 4, 1)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no clients", func(c *Config) { c.Clients = nil }},
		{"zero epochs", func(c *Config) { c.Epochs = 0 }},
		{"zero batch", func(c *Config) { c.Batch = 0 }},
		{"nil lr", func(c *Config) { c.LR = nil }},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"negative lambda", func(c *Config) { c.Lambda = -1 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestMeanRegularizedOmegaProperties(t *testing.T) {
	o := meanRegularizedOmega(5)
	// Rows sum to zero: the regulariser penalises deviation from the mean.
	for i := 0; i < 5; i++ {
		var sum float64
		for j := 0; j < 5; j++ {
			sum += o.At(i, j)
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("row %d sums to %v, want 0", i, sum)
		}
	}
	if math.Abs(o.At(0, 0)-0.8) > 1e-12 {
		t.Fatalf("diagonal = %v, want 0.8", o.At(0, 0))
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	cfg1, _ := harConfig(t, 6, 1)
	cfg1.Rounds = 4
	cfg1.Parallelism = 1
	r1, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, _ := harConfig(t, 6, 1)
	cfg2.Rounds = 4
	cfg2.Parallelism = 6
	r2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	for k := range r1.Weights {
		for j := range r1.Weights[k] {
			if r1.Weights[k][j] != r2.Weights[k][j] {
				t.Fatalf("parallelism changed task %d weight %d", k, j)
			}
		}
	}
}

func TestTaskAccuraciesReported(t *testing.T) {
	cfg, har := harConfig(t, 8, 2)
	cfg.Rounds = 15
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TaskAccuracies) != 8 {
		t.Fatalf("task accuracies = %d, want 8", len(res.TaskAccuracies))
	}
	for k, a := range res.TaskAccuracies {
		if math.IsNaN(a) || a < 0 || a > 1 {
			t.Fatalf("task %d accuracy = %v", k, a)
		}
	}
	_ = har
}
