package mtl

import (
	"testing"

	"cmfl/internal/core"
	"cmfl/internal/telemetry"
)

// TestObserverOrdering mirrors the fl-engine ordering tests: per-task
// ClientEvents of a round arrive (in task order) before the round's
// RoundEvent, and the streams agree with the returned history.
func TestObserverOrdering(t *testing.T) {
	cfg, _ := harConfig(t, 8, 2)
	cfg.Rounds = 6
	cfg.Filter = core.NewFilter(core.Constant(0.5))
	var seq []int // positive: RoundEvent round; negative: ClientEvent round
	var roundEvents []telemetry.RoundEvent
	clientCount := make(map[int]int)
	clientUploads := make(map[int]int)
	clientBytes := make(map[int]int64)
	cfg.Observers = []telemetry.Observer{telemetry.Funcs{
		Round: func(e telemetry.RoundEvent) {
			roundEvents = append(roundEvents, e)
			seq = append(seq, e.Round)
		},
		Client: func(e telemetry.ClientEvent) {
			seq = append(seq, -e.Round)
			clientCount[e.Round]++
			if e.Uploaded {
				clientUploads[e.Round]++
			}
			clientBytes[e.Round] += e.UplinkBytes
		},
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lastRound := 0
	for _, s := range seq {
		if s > 0 {
			if s != lastRound+1 {
				t.Fatalf("RoundEvent %d after round %d", s, lastRound)
			}
			lastRound = s
		} else if -s != lastRound+1 {
			t.Fatalf("ClientEvent for round %d arrived while round %d was current", -s, lastRound)
		}
	}
	if len(roundEvents) != len(res.History) {
		t.Fatalf("observed %d rounds, history has %d", len(roundEvents), len(res.History))
	}
	var cumBytes int64
	for i, e := range roundEvents {
		if e.Engine != telemetry.EngineMTL {
			t.Fatalf("engine = %q, want %q", e.Engine, telemetry.EngineMTL)
		}
		if e != res.History[i].RoundEvent {
			t.Fatalf("round %d: observed event %+v != history %+v", i+1, e, res.History[i].RoundEvent)
		}
		if clientCount[e.Round] != e.Participants {
			t.Fatalf("round %d: %d ClientEvents, %d participants", e.Round, clientCount[e.Round], e.Participants)
		}
		if clientUploads[e.Round] != e.Uploaded {
			t.Fatalf("round %d: client stream shows %d uploads, RoundEvent says %d",
				e.Round, clientUploads[e.Round], e.Uploaded)
		}
		cumBytes += clientBytes[e.Round]
		if e.CumUplinkBytes != cumBytes {
			t.Fatalf("round %d: CumUplinkBytes = %d, client stream sums to %d",
				e.Round, e.CumUplinkBytes, cumBytes)
		}
	}
}
