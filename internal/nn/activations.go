package nn

import (
	"math"

	"cmfl/internal/tensor"
)

// ReLU applies max(0, x) elementwise. Shape-preserving, parameter-free.
// Outputs alias a persistent per-layer buffer (see scratch.go).
type ReLU struct {
	out, gin *tensor.Tensor
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := ensure(&r.out, x.Shape...)
	tensor.ReLUFwd(out.Data, x.Data)
	return out
}

// Backward implements Layer. out > 0 exactly when the forward input was
// positive, so the layer's own output doubles as the gradient mask.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	grad := ensure(&r.gin, gradOut.Shape...)
	tensor.ReLUBwd(grad.Data, gradOut.Data, r.out.Data)
	return grad
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Tanh applies tanh elementwise.
type Tanh struct {
	out, gin *tensor.Tensor
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := ensure(&t.out, x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	grad := ensure(&t.gin, gradOut.Shape...)
	for i, y := range t.out.Data {
		grad.Data[i] = gradOut.Data[i] * (1 - y*y)
	}
	return grad
}

// Params implements Layer.
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (t *Tanh) Grads() []*tensor.Tensor { return nil }

// Sigmoid applies the logistic function elementwise.
type Sigmoid struct {
	out, gin *tensor.Tensor
}

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := ensure(&s.out, x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = sigmoid(v)
	}
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	grad := ensure(&s.gin, gradOut.Shape...)
	for i, y := range s.out.Data {
		grad.Data[i] = gradOut.Data[i] * y * (1 - y)
	}
	return grad
}

// Params implements Layer.
func (s *Sigmoid) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (s *Sigmoid) Grads() []*tensor.Tensor { return nil }

func sigmoid(v float64) float64 {
	if v >= 0 {
		return 1 / (1 + math.Exp(-v))
	}
	e := math.Exp(v)
	return e / (1 + e)
}

// Flatten reshapes [batch, ...] to [batch, rest].
type Flatten struct {
	inShape []int

	out, gin *tensor.Tensor
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	batch := x.Dim(0)
	return viewAs(&f.out, x.Data, batch, x.Len()/batch)
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return viewAs(&f.gin, gradOut.Data, f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }
