package nn

import (
	"math"

	"cmfl/internal/tensor"
)

// ReLU applies max(0, x) elementwise. Shape-preserving, parameter-free.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	if cap(r.mask) < x.Len() {
		r.mask = make([]bool, x.Len())
	}
	r.mask = r.mask[:x.Len()]
	for i, v := range out.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	grad := gradOut.Clone()
	for i := range grad.Data {
		if !r.mask[i] {
			grad.Data[i] = 0
		}
	}
	return grad
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Tanh applies tanh elementwise.
type Tanh struct {
	out *tensor.Tensor
}

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = math.Tanh(v)
	}
	t.out = out
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	grad := gradOut.Clone()
	for i, y := range t.out.Data {
		grad.Data[i] *= 1 - y*y
	}
	return grad
}

// Params implements Layer.
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (t *Tanh) Grads() []*tensor.Tensor { return nil }

// Sigmoid applies the logistic function elementwise.
type Sigmoid struct {
	out *tensor.Tensor
}

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor) *tensor.Tensor {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = sigmoid(v)
	}
	s.out = out
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	grad := gradOut.Clone()
	for i, y := range s.out.Data {
		grad.Data[i] *= y * (1 - y)
	}
	return grad
}

// Params implements Layer.
func (s *Sigmoid) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (s *Sigmoid) Grads() []*tensor.Tensor { return nil }

func sigmoid(v float64) float64 {
	if v >= 0 {
		return 1 / (1 + math.Exp(-v))
	}
	e := math.Exp(v)
	return e / (1 + e)
}

// Flatten reshapes [batch, ...] to [batch, rest].
type Flatten struct {
	inShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	batch := x.Dim(0)
	return x.Reshape(batch, x.Len()/batch)
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return gradOut.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }
