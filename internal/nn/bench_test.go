package nn

import (
	"testing"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// convBenchCases are the two convolutions of the paper-scale MNIST CNN
// (28×28 input, 5×5 kernels) at the paper's local batch size B=2.
var convBenchCases = []struct {
	name                string
	batch, inC, outC, k int
	h, w                int
}{
	{"conv1-2x1x28x28-k5x16", 2, 1, 16, 5, 28, 28},
	{"conv2-2x16x12x12-k5x32", 2, 16, 32, 5, 12, 12},
}

// BenchmarkConvForward measures Conv2D.Forward at the MNIST CNN shapes.
func BenchmarkConvForward(b *testing.B) {
	for _, c := range convBenchCases {
		b.Run(c.name, func(b *testing.B) {
			rng := xrand.New(1)
			layer := NewConv2D(c.inC, c.outC, c.k, rng)
			x := tensor.FromSlice(rng.NormVec(c.batch*c.inC*c.h*c.w, 0, 1), c.batch, c.inC, c.h, c.w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				layer.Forward(x)
			}
		})
	}
}

// BenchmarkConvBackward measures Conv2D.Backward (weight-gradient and
// input-gradient products) at the same shapes.
func BenchmarkConvBackward(b *testing.B) {
	for _, c := range convBenchCases {
		b.Run(c.name, func(b *testing.B) {
			rng := xrand.New(2)
			layer := NewConv2D(c.inC, c.outC, c.k, rng)
			x := tensor.FromSlice(rng.NormVec(c.batch*c.inC*c.h*c.w, 0, 1), c.batch, c.inC, c.h, c.w)
			out := layer.Forward(x)
			grad := tensor.FromSlice(rng.NormVec(out.Len(), 0, 1), out.Shape...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				layer.Backward(grad)
			}
		})
	}
}

// BenchmarkDenseStep measures one Dense forward+backward at the CNN head
// shape (flattened conv output → hidden layer).
func BenchmarkDenseStep(b *testing.B) {
	rng := xrand.New(3)
	layer := NewDense(512, 128, rng)
	x := tensor.FromSlice(rng.NormVec(2*512, 0, 1), 2, 512)
	grad := tensor.FromSlice(rng.NormVec(2*128, 0, 1), 2, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Forward(x)
		layer.Backward(grad)
	}
}

// BenchmarkLSTMStep measures one training step of the next-word LSTM at a
// scaled paper shape (2 layers over a 10-word window).
func BenchmarkLSTMStep(b *testing.B) {
	cfg := LSTMConfig{Vocab: 500, Embed: 32, Hidden: 64, Layers: 2}
	net := NewNextWordLSTM(cfg, xrand.New(4))
	rng := xrand.New(5)
	batch, window := 5, 10
	ids := make([]float64, batch*window)
	for i := range ids {
		ids[i] = float64(rng.Intn(cfg.Vocab))
	}
	x := tensor.FromSlice(ids, batch, window)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(cfg.Vocab)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainBatch(net, x, labels, 0.1)
	}
}
