package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
)

// Checkpoint format: magic, version, parameter count, big-endian float64s.
// Only parameters are stored — the architecture is code, reconstructed by
// the same factory on load (matching the federated deployments, where
// server and clients already share the model definition).
const (
	checkpointMagic   uint32 = 0xC3F1C0DE
	checkpointVersion uint32 = 1
)

// ErrBadCheckpoint reports an unreadable or mismatched checkpoint.
var ErrBadCheckpoint = errors.New("nn: bad checkpoint")

// MarshalParams serialises the network's parameter vector.
func (n *Network) MarshalParams() []byte {
	params := n.ParamVector()
	out := make([]byte, 12+8*len(params))
	binary.BigEndian.PutUint32(out[:4], checkpointMagic)
	binary.BigEndian.PutUint32(out[4:8], checkpointVersion)
	binary.BigEndian.PutUint32(out[8:12], uint32(len(params)))
	for i, v := range params {
		binary.BigEndian.PutUint64(out[12+i*8:12+(i+1)*8], math.Float64bits(v))
	}
	return out
}

// UnmarshalParams restores a parameter vector serialised by MarshalParams.
// The network's architecture (and thus parameter count) must match.
func (n *Network) UnmarshalParams(data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("%w: %d bytes, want >= 12", ErrBadCheckpoint, len(data))
	}
	if binary.BigEndian.Uint32(data[:4]) != checkpointMagic {
		return fmt.Errorf("%w: wrong magic", ErrBadCheckpoint)
	}
	if v := binary.BigEndian.Uint32(data[4:8]); v != checkpointVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, v)
	}
	count := int(binary.BigEndian.Uint32(data[8:12]))
	if len(data) != 12+8*count {
		return fmt.Errorf("%w: %d bytes for %d params", ErrBadCheckpoint, len(data), count)
	}
	if count != n.NumParams() {
		return fmt.Errorf("%w: checkpoint has %d params, network has %d", ErrBadCheckpoint, count, n.NumParams())
	}
	params := make([]float64, count)
	for i := range params {
		params[i] = math.Float64frombits(binary.BigEndian.Uint64(data[12+i*8 : 12+(i+1)*8]))
	}
	return n.SetParamVector(params)
}

// SaveCheckpoint writes the network's parameters to path.
func (n *Network) SaveCheckpoint(path string) error {
	if err := os.WriteFile(path, n.MarshalParams(), 0o644); err != nil {
		return fmt.Errorf("nn: save checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint restores the network's parameters from path.
func (n *Network) LoadCheckpoint(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("nn: load checkpoint: %w", err)
	}
	return n.UnmarshalParams(data)
}
