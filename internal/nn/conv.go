package nn

import (
	"math"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// Conv2D is a 2-D convolution with stride 1 and no padding ("valid").
//
// Input shape [batch, inC, H, W]; output shape [batch, outC, H-K+1, W-K+1].
// The paper's MNIST model uses two 5×5 convolutions; the kernel size is a
// parameter so scaled-down experiments can use 3×3.
type Conv2D struct {
	InC, OutC, K int

	w, b   *tensor.Tensor // w: [outC, inC, K, K], b: [outC]
	gw, gb *tensor.Tensor

	x *tensor.Tensor
}

// NewConv2D creates a convolution layer with Glorot-uniform initialisation.
func NewConv2D(inC, outC, k int, rng *xrand.Stream) *Conv2D {
	fanIn := inC * k * k
	fanOut := outC * k * k
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return &Conv2D{
		InC:  inC,
		OutC: outC,
		K:    k,
		w:    tensor.FromSlice(rng.UniformVec(outC*inC*k*k, -limit, limit), outC, inC, k, k),
		b:    tensor.New(outC),
		gw:   tensor.New(outC, inC, k, k),
		gb:   tensor.New(outC),
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	c.x = x
	batch, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := h-c.K+1, w-c.K+1
	out := tensor.New(batch, c.OutC, oh, ow)
	for n := 0; n < batch; n++ {
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.b.Data[oc]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					sum := bias
					for ic := 0; ic < c.InC; ic++ {
						xBase := ((n*c.InC+ic)*h + oy) * w
						wBase := ((oc*c.InC + ic) * c.K) * c.K
						for ky := 0; ky < c.K; ky++ {
							xRow := x.Data[xBase+ky*w+ox : xBase+ky*w+ox+c.K]
							wRow := c.w.Data[wBase+ky*c.K : wBase+(ky+1)*c.K]
							for kx, wv := range wRow {
								sum += xRow[kx] * wv
							}
						}
					}
					out.Data[((n*c.OutC+oc)*oh+oy)*ow+ox] = sum
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	x := c.x
	batch, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := h-c.K+1, w-c.K+1
	gradIn := tensor.New(batch, c.InC, h, w)
	for n := 0; n < batch; n++ {
		for oc := 0; oc < c.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := gradOut.Data[((n*c.OutC+oc)*oh+oy)*ow+ox]
					if g == 0 {
						continue
					}
					c.gb.Data[oc] += g
					for ic := 0; ic < c.InC; ic++ {
						xBase := ((n*c.InC+ic)*h + oy) * w
						wBase := ((oc*c.InC + ic) * c.K) * c.K
						giBase := ((n*c.InC+ic)*h + oy) * w
						for ky := 0; ky < c.K; ky++ {
							xRow := x.Data[xBase+ky*w+ox : xBase+ky*w+ox+c.K]
							wRow := c.w.Data[wBase+ky*c.K : wBase+(ky+1)*c.K]
							gwRow := c.gw.Data[wBase+ky*c.K : wBase+(ky+1)*c.K]
							giRow := gradIn.Data[giBase+ky*w+ox : giBase+ky*w+ox+c.K]
							for kx := 0; kx < c.K; kx++ {
								gwRow[kx] += g * xRow[kx]
								giRow[kx] += g * wRow[kx]
							}
						}
					}
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.w, c.b} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gw, c.gb} }

// MaxPool2 is a 2×2 max pooling layer with stride 2.
//
// Input shape [batch, C, H, W] with even H and W; output [batch, C, H/2, W/2].
type MaxPool2 struct {
	argmax  []int
	inShape []int
}

// NewMaxPool2 returns a 2×2 max-pooling layer.
func NewMaxPool2() *MaxPool2 { return &MaxPool2{} }

// Forward implements Layer.
func (p *MaxPool2) Forward(x *tensor.Tensor) *tensor.Tensor {
	batch, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := h/2, w/2
	p.inShape = append(p.inShape[:0], x.Shape...)
	out := tensor.New(batch, ch, oh, ow)
	if cap(p.argmax) < out.Len() {
		p.argmax = make([]int, out.Len())
	}
	p.argmax = p.argmax[:out.Len()]
	for n := 0; n < batch; n++ {
		for c := 0; c < ch; c++ {
			base := (n*ch + c) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := math.Inf(-1)
					bestIdx := 0
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							idx := base + (2*oy+dy)*w + 2*ox + dx
							if v := x.Data[idx]; v > best {
								best = v
								bestIdx = idx
							}
						}
					}
					oIdx := ((n*ch+c)*oh+oy)*ow + ox
					out.Data[oIdx] = best
					p.argmax[oIdx] = bestIdx
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gradIn := tensor.New(p.inShape...)
	for oIdx, iIdx := range p.argmax {
		gradIn.Data[iIdx] += gradOut.Data[oIdx]
	}
	return gradIn
}

// Params implements Layer.
func (p *MaxPool2) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool2) Grads() []*tensor.Tensor { return nil }
