package nn

import (
	"math"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// Conv2D is a 2-D convolution with stride 1 and no padding ("valid").
//
// Input shape [batch, inC, H, W]; output shape [batch, outC, H-K+1, W-K+1].
// The paper's MNIST model uses two 5×5 convolutions; the kernel size is a
// parameter so scaled-down experiments can use 3×3.
//
// Both passes lower the convolution to GEMM via im2col: for each sample the
// K×K input windows are unrolled into a [inC·K·K, oh·ow] column matrix, so
// the forward pass is w·cols, the weight gradient is dY·colsᵀ and the input
// gradient is wᵀ·dY scattered back (col2im). The column matrix and all
// output/gradient tensors live in a persistent per-layer workspace, so
// steady-state training allocates nothing here.
type Conv2D struct {
	// skipInputGrad is set by Network.Backward when this layer is first in
	// the stack and its input gradient would be discarded.
	skipInputGrad bool

	// params/grads cache the Params()/Grads() slices so per-step
	// optimizer sweeps do not allocate.
	params, grads []*tensor.Tensor

	InC, OutC, K int

	w, b   *tensor.Tensor // w: [outC, inC, K, K], b: [outC]
	gw, gb *tensor.Tensor

	x *tensor.Tensor

	// Workspace (see scratch.go for lifetime rules).
	cols, dcols       *tensor.Tensor // [inC·K·K, oh·ow] im2col panel of one sample
	out, gin          *tensor.Tensor
	w2d, gw2d         *tensor.Tensor // cached 2-D views of w and gw
	outView, gradView *tensor.Tensor
}

// NewConv2D creates a convolution layer with Glorot-uniform initialisation.
func NewConv2D(inC, outC, k int, rng *xrand.Stream) *Conv2D {
	fanIn := inC * k * k
	fanOut := outC * k * k
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return &Conv2D{
		InC:  inC,
		OutC: outC,
		K:    k,
		w:    tensor.FromSlice(rng.UniformVec(outC*inC*k*k, -limit, limit), outC, inC, k, k),
		b:    tensor.New(outC),
		gw:   tensor.New(outC, inC, k, k),
		gb:   tensor.New(outC),
	}
}

// im2col unrolls sample n of x into cols: row (ic·K+ky)·K+kx holds the
// window element (ky, kx) of channel ic for every output position, laid out
// so each output row is a contiguous copy of an input-row segment.
func (c *Conv2D) im2col(x *tensor.Tensor, n, h, w, oh, ow int, cols *tensor.Tensor) {
	p := oh * ow
	row := 0
	for ic := 0; ic < c.InC; ic++ {
		chanBase := (n*c.InC + ic) * h * w
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				dst := cols.Data[row*p : (row+1)*p]
				for oy := 0; oy < oh; oy++ {
					src := x.Data[chanBase+(oy+ky)*w+kx:]
					copy(dst[oy*ow:(oy+1)*ow], src[:ow])
				}
				row++
			}
		}
	}
}

// col2im scatters dcols back into sample n of gin, accumulating where
// windows overlap — the adjoint of im2col.
func (c *Conv2D) col2im(dcols *tensor.Tensor, n, h, w, oh, ow int, gin *tensor.Tensor) {
	p := oh * ow
	row := 0
	for ic := 0; ic < c.InC; ic++ {
		chanBase := (n*c.InC + ic) * h * w
		for ky := 0; ky < c.K; ky++ {
			for kx := 0; kx < c.K; kx++ {
				src := dcols.Data[row*p : (row+1)*p]
				for oy := 0; oy < oh; oy++ {
					dst := gin.Data[chanBase+(oy+ky)*w+kx:]
					srcRow := src[oy*ow : (oy+1)*ow]
					for i, v := range srcRow {
						dst[i] += v
					}
				}
				row++
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	c.x = x
	batch, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := h-c.K+1, w-c.K+1
	ckk := c.InC * c.K * c.K
	p := oh * ow

	out := ensure(&c.out, batch, c.OutC, oh, ow)
	cols := ensure(&c.cols, ckk, p)
	w2d := viewAs(&c.w2d, c.w.Data, c.OutC, ckk)
	for n := 0; n < batch; n++ {
		c.im2col(x, n, h, w, oh, ow, cols)
		outN := viewAs(&c.outView, out.Data[n*c.OutC*p:(n+1)*c.OutC*p], c.OutC, p)
		tensor.MatMulInto(outN, w2d, cols)
		for oc := 0; oc < c.OutC; oc++ {
			bias := c.b.Data[oc]
			row := outN.Data[oc*p : (oc+1)*p]
			for i := range row {
				row[i] += bias
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	x := c.x
	batch, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := h-c.K+1, w-c.K+1
	ckk := c.InC * c.K * c.K
	p := oh * ow

	var gin *tensor.Tensor
	if !c.skipInputGrad {
		gin = ensure(&c.gin, batch, c.InC, h, w)
		gin.Zero()
	}
	cols := ensure(&c.cols, ckk, p)
	dcols := ensure(&c.dcols, ckk, p)
	w2d := viewAs(&c.w2d, c.w.Data, c.OutC, ckk)
	gw2d := viewAs(&c.gw2d, c.gw.Data, c.OutC, ckk)
	for n := 0; n < batch; n++ {
		gN := viewAs(&c.gradView, gradOut.Data[n*c.OutC*p:(n+1)*c.OutC*p], c.OutC, p)
		c.im2col(x, n, h, w, oh, ow, cols)
		// dW += dY·colsᵀ ; db += row sums of dY ; dcols = wᵀ·dY.
		tensor.AddMatMulTransB(gw2d, gN, cols)
		for oc := 0; oc < c.OutC; oc++ {
			row := gN.Data[oc*p : (oc+1)*p]
			var s float64
			for _, v := range row {
				s += v
			}
			c.gb.Data[oc] += s
		}
		if gin != nil {
			tensor.MatMulTransAInto(dcols, w2d, gN)
			c.col2im(dcols, n, h, w, oh, ow, gin)
		}
	}
	return gin
}

// setSkipInputGrad implements the nn-internal inputGradSkipper contract: a
// Conv2D used as the network's first layer omits dcols/col2im and returns a
// nil input gradient.
func (c *Conv2D) setSkipInputGrad(skip bool) { c.skipInputGrad = skip }

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor {
	if c.params == nil {
		c.params = []*tensor.Tensor{c.w, c.b}
	}
	return c.params
}

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor {
	if c.grads == nil {
		c.grads = []*tensor.Tensor{c.gw, c.gb}
	}
	return c.grads
}

// MaxPool2 is a 2×2 max pooling layer with stride 2.
//
// Input shape [batch, C, H, W] with even H and W; output [batch, C, H/2, W/2].
type MaxPool2 struct {
	argmax  []int
	inShape []int

	out, gin *tensor.Tensor
}

// NewMaxPool2 returns a 2×2 max-pooling layer.
func NewMaxPool2() *MaxPool2 { return &MaxPool2{} }

// Forward implements Layer.
func (p *MaxPool2) Forward(x *tensor.Tensor) *tensor.Tensor {
	batch, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := h/2, w/2
	p.inShape = append(p.inShape[:0], x.Shape...)
	out := ensure(&p.out, batch, ch, oh, ow)
	if cap(p.argmax) < out.Len() {
		p.argmax = make([]int, out.Len())
	}
	p.argmax = p.argmax[:out.Len()]
	for n := 0; n < batch; n++ {
		for c := 0; c < ch; c++ {
			base := (n*ch + c) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := math.Inf(-1)
					bestIdx := 0
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							idx := base + (2*oy+dy)*w + 2*ox + dx
							if v := x.Data[idx]; v > best {
								best = v
								bestIdx = idx
							}
						}
					}
					oIdx := ((n*ch+c)*oh+oy)*ow + ox
					out.Data[oIdx] = best
					p.argmax[oIdx] = bestIdx
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	gin := ensure(&p.gin, p.inShape...)
	gin.Zero()
	for oIdx, iIdx := range p.argmax {
		gin.Data[iIdx] += gradOut.Data[oIdx]
	}
	return gin
}

// Params implements Layer.
func (p *MaxPool2) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool2) Grads() []*tensor.Tensor { return nil }
