package nn

import (
	"math"
	"testing"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// Naive direct-convolution reference (the seed implementation's semantics,
// kept as ground truth for the im2col+GEMM rewrite).

func naiveConvForward(w, b, x *tensor.Tensor, inC, outC, k int) *tensor.Tensor {
	batch, h, wd := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := h-k+1, wd-k+1
	out := tensor.New(batch, outC, oh, ow)
	for n := 0; n < batch; n++ {
		for oc := 0; oc < outC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := b.Data[oc]
					for ic := 0; ic < inC; ic++ {
						for ky := 0; ky < k; ky++ {
							for kx := 0; kx < k; kx++ {
								wv := w.Data[((oc*inC+ic)*k+ky)*k+kx]
								xv := x.Data[((n*inC+ic)*h+oy+ky)*wd+ox+kx]
								s += wv * xv
							}
						}
					}
					out.Data[((n*outC+oc)*oh+oy)*ow+ox] = s
				}
			}
		}
	}
	return out
}

func naiveConvBackward(w, x, gradOut *tensor.Tensor, inC, outC, k int) (gw, gb, gin *tensor.Tensor) {
	batch, h, wd := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := h-k+1, wd-k+1
	gw = tensor.New(outC, inC, k, k)
	gb = tensor.New(outC)
	gin = tensor.New(batch, inC, h, wd)
	for n := 0; n < batch; n++ {
		for oc := 0; oc < outC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := gradOut.Data[((n*outC+oc)*oh+oy)*ow+ox]
					gb.Data[oc] += g
					for ic := 0; ic < inC; ic++ {
						for ky := 0; ky < k; ky++ {
							for kx := 0; kx < k; kx++ {
								gw.Data[((oc*inC+ic)*k+ky)*k+kx] += g * x.Data[((n*inC+ic)*h+oy+ky)*wd+ox+kx]
								gin.Data[((n*inC+ic)*h+oy+ky)*wd+ox+kx] += g * w.Data[((oc*inC+ic)*k+ky)*k+kx]
							}
						}
					}
				}
			}
		}
	}
	return gw, gb, gin
}

func convMaxRelDiff(t *testing.T, got, want *tensor.Tensor) float64 {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("length mismatch: %d vs %d", len(got.Data), len(want.Data))
	}
	var worst float64
	for i := range got.Data {
		scale := math.Max(1, math.Max(math.Abs(got.Data[i]), math.Abs(want.Data[i])))
		if d := math.Abs(got.Data[i]-want.Data[i]) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// TestConvIm2colEquivalence pins the im2col+GEMM Conv2D against the naive
// direct convolution within 1e-12 relative error, on both passes, across
// edge shapes (batch=1, K=1, 1-channel and multi-channel, paper 5×5).
func TestConvIm2colEquivalence(t *testing.T) {
	const tol = 1e-12
	cases := []struct {
		name                string
		batch, inC, outC, k int
		h, w                int
	}{
		{"batch1-single", 1, 1, 3, 3, 8, 8},
		{"k1-pointwise", 2, 2, 4, 1, 5, 7},
		{"multichannel", 3, 2, 3, 3, 9, 6},
		{"paper-conv1", 2, 1, 16, 5, 28, 28},
		{"paper-conv2", 2, 16, 8, 5, 12, 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := xrand.New(77)
			layer := NewConv2D(tc.inC, tc.outC, tc.k, rng)
			w, b := layer.Params()[0], layer.Params()[1]
			for i := range b.Data { // nonzero biases to cover the bias path
				b.Data[i] = rng.Norm()
			}
			x := tensor.FromSlice(rng.NormVec(tc.batch*tc.inC*tc.h*tc.w, 0, 1), tc.batch, tc.inC, tc.h, tc.w)
			oh, ow := tc.h-tc.k+1, tc.w-tc.k+1
			gradOut := tensor.FromSlice(rng.NormVec(tc.batch*tc.outC*oh*ow, 0, 1), tc.batch, tc.outC, oh, ow)

			got := layer.Forward(x)
			want := naiveConvForward(w, b, x, tc.inC, tc.outC, tc.k)
			if d := convMaxRelDiff(t, got, want); d > tol {
				t.Errorf("forward: rel diff %g", d)
			}

			gotGin := layer.Backward(gradOut)
			wantGw, wantGb, wantGin := naiveConvBackward(w, x, gradOut, tc.inC, tc.outC, tc.k)
			if d := convMaxRelDiff(t, layer.Grads()[0], wantGw); d > tol {
				t.Errorf("weight grad: rel diff %g", d)
			}
			if d := convMaxRelDiff(t, layer.Grads()[1], wantGb); d > tol {
				t.Errorf("bias grad: rel diff %g", d)
			}
			if d := convMaxRelDiff(t, gotGin, wantGin); d > tol {
				t.Errorf("input grad: rel diff %g", d)
			}

			// A second Forward/Backward on the same layer must reuse the
			// workspace and still be exact (grads accumulate).
			layer.Forward(x)
			layer.Backward(gradOut)
			wantGw2 := wantGw.Clone()
			wantGw2.AddInPlace(wantGw)
			if d := convMaxRelDiff(t, layer.Grads()[0], wantGw2); d > tol {
				t.Errorf("accumulated weight grad: rel diff %g", d)
			}
		})
	}
}
