package nn

import (
	"math"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// Dense is a fully connected layer: y = x·W + b.
//
// Input shape [batch, in]; output shape [batch, out]. Outputs alias a
// persistent per-layer buffer (see scratch.go).
type Dense struct {
	// params/grads cache the Params()/Grads() slices so per-step
	// optimizer sweeps do not allocate.
	params, grads []*tensor.Tensor

	In, Out int

	w, b   *tensor.Tensor // w: [in, out], b: [out]
	gw, gb *tensor.Tensor

	x *tensor.Tensor // cached forward input

	out, gin *tensor.Tensor // workspace
}

// NewDense creates a dense layer with Glorot-uniform weight initialisation
// drawn from rng, and zero biases.
func NewDense(in, out int, rng *xrand.Stream) *Dense {
	limit := math.Sqrt(6.0 / float64(in+out))
	return &Dense{
		In:  in,
		Out: out,
		w:   tensor.FromSlice(rng.UniformVec(in*out, -limit, limit), in, out),
		b:   tensor.New(out),
		gw:  tensor.New(in, out),
		gb:  tensor.New(out),
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	d.x = x
	batch := x.Dim(0)
	out := ensure(&d.out, batch, d.Out)
	tensor.MatMulInto(out, x, d.w)
	for i := 0; i < batch; i++ {
		row := out.Data[i*d.Out : (i+1)*d.Out]
		for j := range row {
			row[j] += d.b.Data[j]
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	// dW += xᵀ · gradOut ; db += column sums ; dX = gradOut · Wᵀ
	tensor.AddMatMulTransA(d.gw, d.x, gradOut)
	batch := gradOut.Dim(0)
	for i := 0; i < batch; i++ {
		row := gradOut.Data[i*d.Out : (i+1)*d.Out]
		for j, v := range row {
			d.gb.Data[j] += v
		}
	}
	gin := ensure(&d.gin, batch, d.In)
	return tensor.MatMulTransBInto(gin, gradOut, d.w)
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor {
	if d.params == nil {
		d.params = []*tensor.Tensor{d.w, d.b}
	}
	return d.params
}

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor {
	if d.grads == nil {
		d.grads = []*tensor.Tensor{d.gw, d.gb}
	}
	return d.grads
}
