package nn

import (
	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// TrainingMode is implemented by layers whose behaviour differs between
// training and inference (e.g. Dropout). Network.SetTraining toggles all of
// them.
type TrainingMode interface {
	SetTraining(training bool)
}

// SetTraining switches every mode-aware layer between training and
// inference behaviour.
func (n *Network) SetTraining(training bool) {
	for _, l := range n.layers {
		if tm, ok := l.(TrainingMode); ok {
			tm.SetTraining(training)
		}
	}
}

// Dropout zeroes each activation with probability Rate during training and
// scales the survivors by 1/(1−Rate) (inverted dropout), so inference is the
// identity. It starts in training mode.
type Dropout struct {
	Rate float64

	rng      *xrand.Stream
	training bool
	mask     []bool

	out, gin *tensor.Tensor // workspace
}

// NewDropout creates a dropout layer driven by rng.
func NewDropout(rate float64, rng *xrand.Stream) *Dropout {
	return &Dropout{Rate: rate, rng: rng, training: true}
}

// SetTraining implements TrainingMode.
func (d *Dropout) SetTraining(training bool) { d.training = training }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor) *tensor.Tensor {
	if !d.training || d.Rate <= 0 {
		return x
	}
	out := ensure(&d.out, x.Shape...)
	if cap(d.mask) < x.Len() {
		d.mask = make([]bool, x.Len())
	}
	d.mask = d.mask[:x.Len()]
	scale := 1 / (1 - d.Rate)
	for i, v := range x.Data {
		if d.rng.Float64() < d.Rate {
			d.mask[i] = false
			out.Data[i] = 0
		} else {
			d.mask[i] = true
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if !d.training || d.Rate <= 0 {
		return gradOut
	}
	grad := ensure(&d.gin, gradOut.Shape...)
	scale := 1 / (1 - d.Rate)
	for i, v := range gradOut.Data {
		if d.mask[i] {
			grad.Data[i] = v * scale
		} else {
			grad.Data[i] = 0
		}
	}
	return grad
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }
