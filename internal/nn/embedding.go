package nn

import (
	"math"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// Embedding maps integer token ids to dense vectors.
//
// Input shape [batch, time] holding token ids stored as float64 (they are
// rounded to the nearest integer and clamped to the vocabulary range).
// Output shape [batch, time, dim]. Ids are not differentiable, so Backward
// returns a zero tensor of the input shape.
type Embedding struct {
	// params/grads cache the Params()/Grads() slices so per-step
	// optimizer sweeps do not allocate.
	params, grads []*tensor.Tensor

	Vocab, Dim int

	w  *tensor.Tensor // [vocab, dim]
	gw *tensor.Tensor

	ids []int
	bt  []int // cached batch, time

	out, gin *tensor.Tensor // workspace
}

// NewEmbedding creates an embedding table initialised from N(0, 1/sqrt(dim)).
func NewEmbedding(vocab, dim int, rng *xrand.Stream) *Embedding {
	return &Embedding{
		Vocab: vocab,
		Dim:   dim,
		w:     tensor.FromSlice(rng.NormVec(vocab*dim, 0, 1/math.Sqrt(float64(dim))), vocab, dim),
		gw:    tensor.New(vocab, dim),
	}
}

// Forward implements Layer.
func (e *Embedding) Forward(x *tensor.Tensor) *tensor.Tensor {
	batch, time := x.Dim(0), x.Dim(1)
	e.bt = append(e.bt[:0], batch, time)
	if cap(e.ids) < batch*time {
		e.ids = make([]int, batch*time)
	}
	e.ids = e.ids[:batch*time]
	out := ensure(&e.out, batch, time, e.Dim)
	for i, raw := range x.Data {
		id := int(math.Round(raw))
		if id < 0 {
			id = 0
		}
		if id >= e.Vocab {
			id = e.Vocab - 1
		}
		e.ids[i] = id
		copy(out.Data[i*e.Dim:(i+1)*e.Dim], e.w.Data[id*e.Dim:(id+1)*e.Dim])
	}
	return out
}

// Backward implements Layer.
func (e *Embedding) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	for i, id := range e.ids {
		row := e.gw.Data[id*e.Dim : (id+1)*e.Dim]
		g := gradOut.Data[i*e.Dim : (i+1)*e.Dim]
		for j, v := range g {
			row[j] += v
		}
	}
	gin := ensure(&e.gin, e.bt[0], e.bt[1])
	gin.Zero()
	return gin
}

// Params implements Layer.
func (e *Embedding) Params() []*tensor.Tensor {
	if e.params == nil {
		e.params = []*tensor.Tensor{e.w}
	}
	return e.params
}

// Grads implements Layer.
func (e *Embedding) Grads() []*tensor.Tensor {
	if e.grads == nil {
		e.grads = []*tensor.Tensor{e.gw}
	}
	return e.grads
}
