package nn

import (
	"math"
	"testing"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

func TestGradCheckGRULastState(t *testing.T) {
	rng := xrand.New(41)
	net := NewNetwork(NewGRU(3, 4, false, rng), NewDense(4, 3, rng))
	x := tensor.FromSlice(rng.NormVec(2*5*3, 0, 1), 2, 5, 3)
	numericalGradCheck(t, net, x, []int{0, 2}, 1e-5)
}

func TestGradCheckStackedGRU(t *testing.T) {
	rng := xrand.New(42)
	net := NewNetwork(
		NewGRU(3, 4, true, rng),
		NewGRU(4, 4, false, rng),
		NewDense(4, 3, rng),
	)
	x := tensor.FromSlice(rng.NormVec(2*4*3, 0, 1), 2, 4, 3)
	numericalGradCheck(t, net, x, []int{1, 2}, 1e-5)
}

func TestGRUSequenceShapes(t *testing.T) {
	rng := xrand.New(43)
	seq := NewGRU(3, 5, true, rng)
	x := tensor.FromSlice(rng.NormVec(2*4*3, 0, 1), 2, 4, 3)
	out := seq.Forward(x)
	if out.Dim(0) != 2 || out.Dim(1) != 4 || out.Dim(2) != 5 {
		t.Fatalf("sequence output shape = %v", out.Shape)
	}
	last := NewGRU(3, 5, false, xrand.New(44))
	for i, p := range seq.Params() {
		copy(last.Params()[i].Data, p.Data)
	}
	lo := last.Forward(x)
	for n := 0; n < 2; n++ {
		for j := 0; j < 5; j++ {
			a := out.Data[(n*4+3)*5+j]
			b := lo.Data[n*5+j]
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("sequence[T-1] != last-state at (%d,%d)", n, j)
			}
		}
	}
}

func TestGRULearnsSequenceTask(t *testing.T) {
	// Classify whether the first element of a sequence is positive — needs
	// memory across timesteps.
	rng := xrand.New(45)
	net := NewNetwork(NewGRU(1, 6, false, rng), NewDense(6, 2, rng))
	const n, T = 40, 3
	x := tensor.New(n, T, 1)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		first := rng.Norm()
		x.Data[i*T] = first
		for tt := 1; tt < T; tt++ {
			x.Data[i*T+tt] = rng.Norm()
		}
		if first > 0 {
			labels[i] = 1
		}
	}
	for epoch := 0; epoch < 400; epoch++ {
		TrainBatch(net, x.Clone(), labels, 0.2)
	}
	if acc := Accuracy(net, x, labels); acc < 0.9 {
		t.Fatalf("GRU failed to learn first-element task: accuracy %v", acc)
	}
}

func TestSGDMomentumConvergesFaster(t *testing.T) {
	run := func(opt Optimizer) float64 {
		rng := xrand.New(46)
		net := NewMLP(rng, 2, 8, 2)
		xs := []float64{0, 0, 0, 1, 1, 0, 1, 1}
		labels := []int{0, 1, 1, 0}
		x := tensor.FromSlice(xs, 4, 2)
		var loss float64
		for i := 0; i < 300; i++ {
			loss = TrainBatchWith(net, x.Clone(), labels, opt)
		}
		return loss
	}
	plain := run(NewSGD(0.1))
	momentum := run(&SGD{LR: 0.1, Momentum: 0.9})
	if momentum >= plain {
		t.Fatalf("momentum loss %v should beat plain %v after 300 steps", momentum, plain)
	}
}

func TestAdamConverges(t *testing.T) {
	rng := xrand.New(47)
	net := NewMLP(rng, 2, 8, 2)
	xs := []float64{0, 0, 0, 1, 1, 0, 1, 1}
	labels := []int{0, 1, 1, 0}
	x := tensor.FromSlice(xs, 4, 2)
	opt := NewAdam(0.05)
	for i := 0; i < 500; i++ {
		TrainBatchWith(net, x.Clone(), labels, opt)
	}
	if acc := Accuracy(net, x, labels); acc < 1 {
		t.Fatalf("Adam failed to fit XOR: accuracy %v", acc)
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	rng := xrand.New(48)
	net := NewLogistic(4, 2, rng)
	x := tensor.New(2, 4) // zero inputs: only decay acts on weights
	labels := []int{0, 1}
	opt := &SGD{LR: 0.1, Momentum: 0, WeightDecay: 0.5}
	before := tensor.Norm2(net.ParamVector())
	for i := 0; i < 20; i++ {
		TrainBatchWith(net, x.Clone(), labels, opt)
	}
	// Bias gradients are nonzero (softmax), but the weight rows attached to
	// zero inputs should have decayed toward zero.
	after := tensor.Norm2(net.ParamVector()[:4*2])
	if after >= before {
		t.Fatalf("weight decay did not shrink weights: %v -> %v", before, after)
	}
}

func TestOptimizerReset(t *testing.T) {
	opt := &SGD{LR: 0.1, Momentum: 0.9}
	rng := xrand.New(49)
	net := NewLogistic(2, 2, rng)
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	TrainBatchWith(net, x, []int{0, 1}, opt)
	if len(opt.velocity) == 0 {
		t.Fatal("momentum state not allocated")
	}
	opt.Reset()
	if opt.velocity != nil {
		t.Fatal("Reset did not clear state")
	}
	adam := NewAdam(0.01)
	TrainBatchWith(net, x.Clone(), []int{0, 1}, adam)
	adam.Reset()
	if adam.t != 0 || adam.m != nil {
		t.Fatal("Adam Reset incomplete")
	}
}

func TestDropoutTrainingMasksAndScales(t *testing.T) {
	rng := xrand.New(50)
	d := NewDropout(0.5, rng)
	x := tensor.FromSlice([]float64{1, 1, 1, 1, 1, 1, 1, 1}, 2, 4)
	out := d.Forward(x)
	zeros, twos := 0, 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("dropout output %v, want 0 or 2 (inverted scaling)", v)
		}
	}
	if zeros == 0 || twos == 0 {
		t.Fatalf("dropout degenerate: %d zeros, %d survivors", zeros, twos)
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := xrand.New(51)
	net := NewNetwork(NewDense(3, 4, rng), NewDropout(0.5, rng), NewDense(4, 2, rng))
	x := tensor.FromSlice(rng.NormVec(2*3, 0, 1), 2, 3)
	net.SetTraining(false)
	// Outputs alias layer-owned buffers; Clone to retain across Forwards.
	a := net.Forward(x.Clone()).Clone()
	b := net.Forward(x.Clone()).Clone()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("eval-mode dropout must be deterministic identity")
		}
	}
	net.SetTraining(true)
	c := net.Forward(x.Clone())
	diff := false
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("training-mode dropout should perturb activations")
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	rng := xrand.New(52)
	d := NewDropout(0.5, rng)
	x := tensor.FromSlice([]float64{1, 1, 1, 1}, 1, 4)
	out := d.Forward(x)
	grad := d.Backward(tensor.FromSlice([]float64{1, 1, 1, 1}, 1, 4))
	for i := range out.Data {
		if (out.Data[i] == 0) != (grad.Data[i] == 0) {
			t.Fatalf("gradient mask mismatch at %d", i)
		}
		if out.Data[i] != 0 && grad.Data[i] != 2 {
			t.Fatalf("surviving gradient should be scaled by 2, got %v", grad.Data[i])
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	rng := xrand.New(61)
	net := NewCNN(CNNConfig{ImageSize: 12, Kernel: 3, Conv1: 2, Conv2: 3, Hidden: 8, Classes: 4}, rng)
	orig := net.ParamVector()
	data := net.MarshalParams()

	twin := NewCNN(CNNConfig{ImageSize: 12, Kernel: 3, Conv1: 2, Conv2: 3, Hidden: 8, Classes: 4}, xrand.New(62))
	if err := twin.UnmarshalParams(data); err != nil {
		t.Fatal(err)
	}
	got := twin.ParamVector()
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("param %d = %v, want %v", i, got[i], orig[i])
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	rng := xrand.New(63)
	net := NewLogistic(5, 3, rng)
	path := t.TempDir() + "/model.ckpt"
	if err := net.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	twin := NewLogistic(5, 3, xrand.New(64))
	if err := twin.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	a, b := net.ParamVector(), twin.ParamVector()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("file checkpoint round trip mismatch")
		}
	}
}

func TestCheckpointRejectsCorruptData(t *testing.T) {
	rng := xrand.New(65)
	net := NewLogistic(3, 2, rng)
	data := net.MarshalParams()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", data[:8]},
		{"bad magic", append([]byte{0, 0, 0, 0}, data[4:]...)},
		{"truncated params", data[:len(data)-8]},
	}
	for _, tc := range cases {
		if err := net.UnmarshalParams(tc.data); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Dimension mismatch.
	other := NewLogistic(4, 2, rng)
	if err := other.UnmarshalParams(data); err == nil {
		t.Error("expected error for mismatched architecture")
	}
}

func TestCheckpointLoadMissingFile(t *testing.T) {
	net := NewLogistic(2, 2, xrand.New(66))
	if err := net.LoadCheckpoint(t.TempDir() + "/nope.ckpt"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestGradCheckLayerNorm(t *testing.T) {
	rng := xrand.New(67)
	net := NewNetwork(NewDense(4, 6, rng), NewLayerNorm(6), NewDense(6, 3, rng))
	x := tensor.FromSlice(rng.NormVec(3*4, 0, 1), 3, 4)
	numericalGradCheck(t, net, x, []int{0, 2, 1}, 1e-5)
}

func TestLayerNormNormalises(t *testing.T) {
	l := NewLayerNorm(4)
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 10, 20, 30, 40}, 2, 4)
	out := l.Forward(x)
	for n := 0; n < 2; n++ {
		var mean, varSum float64
		for j := 0; j < 4; j++ {
			mean += out.Data[n*4+j]
		}
		mean /= 4
		for j := 0; j < 4; j++ {
			d := out.Data[n*4+j] - mean
			varSum += d * d
		}
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("row %d mean = %v, want 0", n, mean)
		}
		if math.Abs(varSum/4-1) > 1e-3 {
			t.Fatalf("row %d variance = %v, want ~1", n, varSum/4)
		}
	}
}

func TestProgressCallbackOrderIsHandledInFL(t *testing.T) {
	// Placeholder cross-check lives in the fl package tests; here we only
	// assert LayerNorm composes into a trainable network.
	rng := xrand.New(68)
	net := NewNetwork(NewDense(2, 8, rng), NewLayerNorm(8), NewReLU(), NewDense(8, 2, rng))
	xs := []float64{0, 0, 0, 1, 1, 0, 1, 1}
	labels := []int{0, 1, 1, 0}
	x := tensor.FromSlice(xs, 4, 2)
	for i := 0; i < 1500; i++ {
		TrainBatch(net, x.Clone(), labels, 0.1)
	}
	if acc := Accuracy(net, x, labels); acc < 1 {
		t.Fatalf("LayerNorm MLP failed XOR: %v", acc)
	}
}
