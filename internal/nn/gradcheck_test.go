package nn

import (
	"math"
	"testing"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// numericalGradCheck verifies every parameter gradient of net on a
// classification batch against central finite differences.
func numericalGradCheck(t *testing.T, net *Network, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	lossAt := func() float64 {
		logits := net.Forward(x.Clone())
		loss, _ := SoftmaxCrossEntropy(logits, labels)
		return loss
	}
	net.ZeroGrads()
	logits := net.Forward(x.Clone())
	_, grad := SoftmaxCrossEntropy(logits, labels)
	net.Backward(grad)
	analytic := net.GradVector()

	params := net.ParamVector()
	const h = 1e-5
	maxRel := 0.0
	worst := -1
	for i := range params {
		orig := params[i]
		params[i] = orig + h
		if err := net.SetParamVector(params); err != nil {
			t.Fatalf("SetParamVector: %v", err)
		}
		lp := lossAt()
		params[i] = orig - h
		if err := net.SetParamVector(params); err != nil {
			t.Fatalf("SetParamVector: %v", err)
		}
		lm := lossAt()
		params[i] = orig
		numeric := (lp - lm) / (2 * h)
		denom := math.Max(math.Abs(numeric)+math.Abs(analytic[i]), 1e-6)
		rel := math.Abs(numeric-analytic[i]) / denom
		if rel > maxRel {
			maxRel = rel
			worst = i
		}
	}
	if err := net.SetParamVector(params); err != nil {
		t.Fatalf("SetParamVector: %v", err)
	}
	if maxRel > tol {
		t.Fatalf("gradient check failed: max relative error %.3e at param %d (analytic %v)", maxRel, worst, analytic[worst])
	}
}

func TestGradCheckDense(t *testing.T) {
	rng := xrand.New(1)
	net := NewNetwork(NewDense(5, 4, rng), NewReLU(), NewDense(4, 3, rng))
	x := tensor.FromSlice(rng.NormVec(3*5, 0, 1), 3, 5)
	numericalGradCheck(t, net, x, []int{0, 2, 1}, 1e-5)
}

func TestGradCheckTanhSigmoid(t *testing.T) {
	rng := xrand.New(2)
	net := NewNetwork(NewDense(4, 6, rng), NewTanh(), NewDense(6, 5, rng), NewSigmoid(), NewDense(5, 3, rng))
	x := tensor.FromSlice(rng.NormVec(2*4, 0, 1), 2, 4)
	numericalGradCheck(t, net, x, []int{1, 2}, 1e-5)
}

func TestGradCheckConvPool(t *testing.T) {
	rng := xrand.New(3)
	// 8x8 input -> conv3 -> 6x6 -> pool -> 3x3... need even dims for pool:
	// conv3 on 9x9 -> 7x7 is odd; use 10x10 -> conv3 -> 8x8 -> pool -> 4x4.
	net := NewNetwork(
		NewConv2D(1, 2, 3, rng),
		NewReLU(),
		NewMaxPool2(),
		NewFlatten(),
		NewDense(2*4*4, 3, rng),
	)
	x := tensor.FromSlice(rng.NormVec(2*1*10*10, 0, 1), 2, 1, 10, 10)
	numericalGradCheck(t, net, x, []int{2, 0}, 1e-5)
}

func TestGradCheckTwoConvStacks(t *testing.T) {
	rng := xrand.New(4)
	cfg := CNNConfig{ImageSize: 12, Kernel: 3, Conv1: 2, Conv2: 3, Hidden: 8, Classes: 4}
	net := NewCNN(cfg, rng)
	x := tensor.FromSlice(rng.NormVec(2*1*12*12, 0, 1), 2, 1, 12, 12)
	numericalGradCheck(t, net, x, []int{3, 1}, 1e-4)
}

func TestGradCheckLSTMLastState(t *testing.T) {
	rng := xrand.New(5)
	net := NewNetwork(NewLSTM(3, 4, false, rng), NewDense(4, 3, rng))
	x := tensor.FromSlice(rng.NormVec(2*5*3, 0, 1), 2, 5, 3)
	numericalGradCheck(t, net, x, []int{0, 2}, 1e-5)
}

func TestGradCheckStackedLSTM(t *testing.T) {
	rng := xrand.New(6)
	net := NewNetwork(
		NewLSTM(3, 4, true, rng),
		NewLSTM(4, 4, false, rng),
		NewDense(4, 3, rng),
	)
	x := tensor.FromSlice(rng.NormVec(2*4*3, 0, 1), 2, 4, 3)
	numericalGradCheck(t, net, x, []int{1, 2}, 1e-5)
}

func TestGradCheckEmbeddingLSTM(t *testing.T) {
	rng := xrand.New(7)
	cfg := LSTMConfig{Vocab: 11, Embed: 4, Hidden: 5, Layers: 2}
	net := NewNextWordLSTM(cfg, rng)
	ids := []float64{1, 3, 5, 7, 2, 4, 6, 8}
	x := tensor.FromSlice(ids, 2, 4)
	// Slightly looser tolerance: embedding rows touched by a single token
	// have gradients near 1e-7 where central differences lose precision.
	numericalGradCheck(t, net, x, []int{9, 0}, 2e-4)
}
