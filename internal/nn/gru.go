package nn

import (
	"math"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// GRU is a gated recurrent unit unrolled over a fixed-length sequence with
// full backpropagation through time — a lighter alternative to LSTM for the
// next-word workload.
//
// Input shape [batch, time, in]; output [batch, time, hidden] when
// ReturnSequences, else the final hidden state [batch, hidden].
//
// Gate order in the fused matrices is (reset, update, candidate):
//
//	r = σ(x·Wr + h·Ur + br)
//	z = σ(x·Wz + h·Uz + bz)
//	ĥ = tanh(x·Wh + (r∘h)·Uh + bh)
//	h' = (1−z)∘h + z∘ĥ
type GRU struct {
	In, Hidden      int
	ReturnSequences bool

	wx, wh, b    *tensor.Tensor // wx: [in, 3h], wh: [h, 3h], b: [3h]
	gwx, gwh, gb *tensor.Tensor

	x     *tensor.Tensor
	hs    []*tensor.Tensor // h_t for t = 0..T
	rs    []*tensor.Tensor // reset gates
	zs    []*tensor.Tensor // update gates
	cands []*tensor.Tensor // candidate activations ĥ
}

// NewGRU creates a GRU layer with Glorot-uniform input weights.
func NewGRU(in, hidden int, returnSequences bool, rng *xrand.Stream) *GRU {
	limit := math.Sqrt(6.0 / float64(in+3*hidden))
	return &GRU{
		In:              in,
		Hidden:          hidden,
		ReturnSequences: returnSequences,
		wx:              tensor.FromSlice(rng.UniformVec(in*3*hidden, -limit, limit), in, 3*hidden),
		wh:              tensor.FromSlice(rng.NormVec(hidden*3*hidden, 0, 1/math.Sqrt(float64(hidden))), hidden, 3*hidden),
		b:               tensor.New(3 * hidden),
		gwx:             tensor.New(in, 3*hidden),
		gwh:             tensor.New(hidden, 3*hidden),
		gb:              tensor.New(3 * hidden),
	}
}

// Forward implements Layer.
func (g *GRU) Forward(x *tensor.Tensor) *tensor.Tensor {
	batch, T := x.Dim(0), x.Dim(1)
	h := g.Hidden
	g.x = x
	g.hs = append(g.hs[:0], tensor.New(batch, h))
	g.rs = g.rs[:0]
	g.zs = g.zs[:0]
	g.cands = g.cands[:0]

	var seqOut *tensor.Tensor
	if g.ReturnSequences {
		seqOut = tensor.New(batch, T, h)
	}
	for t := 0; t < T; t++ {
		xt := timeSlice(x, t)
		hPrev := g.hs[t]
		preX := tensor.MatMul(xt, g.wx)    // [batch, 3h]
		preH := tensor.MatMul(hPrev, g.wh) // [batch, 3h]
		rt := tensor.New(batch, h)
		zt := tensor.New(batch, h)
		cand := tensor.New(batch, h)
		ht := tensor.New(batch, h)
		for n := 0; n < batch; n++ {
			for j := 0; j < h; j++ {
				r := sigmoid(preX.Data[n*3*h+j] + preH.Data[n*3*h+j] + g.b.Data[j])
				z := sigmoid(preX.Data[n*3*h+h+j] + preH.Data[n*3*h+h+j] + g.b.Data[h+j])
				c := math.Tanh(preX.Data[n*3*h+2*h+j] + r*preH.Data[n*3*h+2*h+j] + g.b.Data[2*h+j])
				hp := hPrev.Data[n*h+j]
				rt.Data[n*h+j] = r
				zt.Data[n*h+j] = z
				cand.Data[n*h+j] = c
				ht.Data[n*h+j] = (1-z)*hp + z*c
			}
		}
		g.rs = append(g.rs, rt)
		g.zs = append(g.zs, zt)
		g.cands = append(g.cands, cand)
		g.hs = append(g.hs, ht)
		if g.ReturnSequences {
			for n := 0; n < batch; n++ {
				copy(seqOut.Data[(n*T+t)*h:(n*T+t+1)*h], ht.Data[n*h:(n+1)*h])
			}
		}
	}
	if g.ReturnSequences {
		return seqOut
	}
	return g.hs[T]
}

// Backward implements Layer.
func (g *GRU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	batch, T := g.x.Dim(0), g.x.Dim(1)
	h := g.Hidden
	gradIn := tensor.New(batch, T, g.In)
	dh := tensor.New(batch, h)
	if !g.ReturnSequences {
		dh.AddInPlace(gradOut)
	}

	for t := T - 1; t >= 0; t-- {
		if g.ReturnSequences {
			for n := 0; n < batch; n++ {
				src := gradOut.Data[(n*T+t)*h : (n*T+t+1)*h]
				dst := dh.Data[n*h : (n+1)*h]
				for j, v := range src {
					dst[j] += v
				}
			}
		}
		hPrev := g.hs[t]
		rt, zt, cand := g.rs[t], g.zs[t], g.cands[t]
		// preH is needed for the reset-gate path; recompute it (cheaper
		// than caching T extra tensors for typical sizes).
		preH := tensor.MatMul(hPrev, g.wh)

		dGate := tensor.New(batch, 3*h)   // grads wrt fused pre-activations
		dhPrev := tensor.New(batch, h)    // direct (1−z)∘dh path
		dPreHCand := tensor.New(batch, h) // grad wrt preH candidate lane
		for n := 0; n < batch; n++ {
			for j := 0; j < h; j++ {
				dhv := dh.Data[n*h+j]
				r, z, c := rt.Data[n*h+j], zt.Data[n*h+j], cand.Data[n*h+j]
				hp := hPrev.Data[n*h+j]
				dz := dhv * (c - hp) * z * (1 - z)
				dc := dhv * z * (1 - c*c)
				dr := dc * preH.Data[n*3*h+2*h+j] * r * (1 - r)
				dGate.Data[n*3*h+j] = dr
				dGate.Data[n*3*h+h+j] = dz
				dGate.Data[n*3*h+2*h+j] = dc
				dhPrev.Data[n*h+j] = dhv * (1 - z)
				dPreHCand.Data[n*h+j] = dc * r
			}
		}

		xt := timeSlice(g.x, t)
		g.gwx.AddInPlace(tensor.MatMulTransA(xt, dGate))
		for n := 0; n < batch; n++ {
			row := dGate.Data[n*3*h : (n+1)*3*h]
			for j, v := range row {
				g.gb.Data[j] += v
			}
		}
		// For the recurrent weights the candidate lane flows through r∘h,
		// the r/z lanes through h directly. Build the effective gate grad
		// for preH.
		dPreH := tensor.New(batch, 3*h)
		for n := 0; n < batch; n++ {
			for j := 0; j < h; j++ {
				dPreH.Data[n*3*h+j] = dGate.Data[n*3*h+j]
				dPreH.Data[n*3*h+h+j] = dGate.Data[n*3*h+h+j]
				dPreH.Data[n*3*h+2*h+j] = dPreHCand.Data[n*h+j]
			}
		}
		g.gwh.AddInPlace(tensor.MatMulTransA(hPrev, dPreH))

		dxt := tensor.MatMulTransB(dGate, g.wx)
		for n := 0; n < batch; n++ {
			copy(gradIn.Data[(n*T+t)*g.In:(n*T+t+1)*g.In], dxt.Data[n*g.In:(n+1)*g.In])
		}
		dhFromGates := tensor.MatMulTransB(dPreH, g.wh)
		dhFromGates.AddInPlace(dhPrev)
		dh = dhFromGates
	}
	return gradIn
}

// Params implements Layer.
func (g *GRU) Params() []*tensor.Tensor { return []*tensor.Tensor{g.wx, g.wh, g.b} }

// Grads implements Layer.
func (g *GRU) Grads() []*tensor.Tensor { return []*tensor.Tensor{g.gwx, g.gwh, g.gb} }
