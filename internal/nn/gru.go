package nn

import (
	"math"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// GRU is a gated recurrent unit unrolled over a fixed-length sequence with
// full backpropagation through time — a lighter alternative to LSTM for the
// next-word workload.
//
// Input shape [batch, time, in]; output [batch, time, hidden] when
// ReturnSequences, else the final hidden state [batch, hidden].
//
// Gate order in the fused matrices is (reset, update, candidate):
//
//	r = σ(x·Wr + h·Ur + br)
//	z = σ(x·Wz + h·Uz + bz)
//	ĥ = tanh(x·Wh + (r∘h)·Uh + bh)
//	h' = (1−z)∘h + z∘ĥ
//
// All per-timestep caches and BPTT scratch live in persistent per-layer
// buffers (see scratch.go), so steady-state training allocates nothing here.
type GRU struct {
	// params/grads cache the Params()/Grads() slices so per-step
	// optimizer sweeps do not allocate.
	params, grads []*tensor.Tensor

	In, Hidden      int
	ReturnSequences bool

	wx, wh, b    *tensor.Tensor // wx: [in, 3h], wh: [h, 3h], b: [3h]
	gwx, gwh, gb *tensor.Tensor

	x     *tensor.Tensor
	hs    []*tensor.Tensor // h_t for t = 0..T
	rs    []*tensor.Tensor // reset gates
	zs    []*tensor.Tensor // update gates
	cands []*tensor.Tensor // candidate activations ĥ

	// Workspace (see scratch.go for lifetime rules).
	seqOut, gin       *tensor.Tensor
	xt, dxt           *tensor.Tensor
	preX, preH        *tensor.Tensor
	dGate, dPreH      *tensor.Tensor
	dhPrev, dPreHCand *tensor.Tensor
	dh, dhNext        *tensor.Tensor // ping-pong dL/dh_t buffers
}

// NewGRU creates a GRU layer with Glorot-uniform input weights.
func NewGRU(in, hidden int, returnSequences bool, rng *xrand.Stream) *GRU {
	limit := math.Sqrt(6.0 / float64(in+3*hidden))
	return &GRU{
		In:              in,
		Hidden:          hidden,
		ReturnSequences: returnSequences,
		wx:              tensor.FromSlice(rng.UniformVec(in*3*hidden, -limit, limit), in, 3*hidden),
		wh:              tensor.FromSlice(rng.NormVec(hidden*3*hidden, 0, 1/math.Sqrt(float64(hidden))), hidden, 3*hidden),
		b:               tensor.New(3 * hidden),
		gwx:             tensor.New(in, 3*hidden),
		gwh:             tensor.New(hidden, 3*hidden),
		gb:              tensor.New(3 * hidden),
	}
}

// Forward implements Layer.
func (g *GRU) Forward(x *tensor.Tensor) *tensor.Tensor {
	batch, T := x.Dim(0), x.Dim(1)
	h := g.Hidden
	g.x = x
	g.hs = ensureSeq(g.hs, T+1, batch, h)
	g.rs = ensureSeq(g.rs, T, batch, h)
	g.zs = ensureSeq(g.zs, T, batch, h)
	g.cands = ensureSeq(g.cands, T, batch, h)
	g.hs[0].Zero()

	var seqOut *tensor.Tensor
	if g.ReturnSequences {
		seqOut = ensure(&g.seqOut, batch, T, h)
	}
	for t := 0; t < T; t++ {
		xt := timeSliceInto(&g.xt, x, t)
		hPrev := g.hs[t]
		preX := tensor.MatMulInto(ensure(&g.preX, batch, 3*h), xt, g.wx)
		preH := tensor.MatMulInto(ensure(&g.preH, batch, 3*h), hPrev, g.wh)
		rt, zt, cand, ht := g.rs[t], g.zs[t], g.cands[t], g.hs[t+1]
		for n := 0; n < batch; n++ {
			for j := 0; j < h; j++ {
				r := sigmoid(preX.Data[n*3*h+j] + preH.Data[n*3*h+j] + g.b.Data[j])
				z := sigmoid(preX.Data[n*3*h+h+j] + preH.Data[n*3*h+h+j] + g.b.Data[h+j])
				c := math.Tanh(preX.Data[n*3*h+2*h+j] + r*preH.Data[n*3*h+2*h+j] + g.b.Data[2*h+j])
				hp := hPrev.Data[n*h+j]
				rt.Data[n*h+j] = r
				zt.Data[n*h+j] = z
				cand.Data[n*h+j] = c
				ht.Data[n*h+j] = (1-z)*hp + z*c
			}
		}
		if g.ReturnSequences {
			for n := 0; n < batch; n++ {
				copy(seqOut.Data[(n*T+t)*h:(n*T+t+1)*h], ht.Data[n*h:(n+1)*h])
			}
		}
	}
	if g.ReturnSequences {
		return seqOut
	}
	return g.hs[T]
}

// Backward implements Layer.
func (g *GRU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	batch, T := g.x.Dim(0), g.x.Dim(1)
	h := g.Hidden
	gradIn := ensure(&g.gin, batch, T, g.In)
	dh := ensure(&g.dh, batch, h)
	dhNext := ensure(&g.dhNext, batch, h)
	dGate := ensure(&g.dGate, batch, 3*h)
	dPreH := ensure(&g.dPreH, batch, 3*h)
	dhPrev := ensure(&g.dhPrev, batch, h)
	dPreHCand := ensure(&g.dPreHCand, batch, h)
	dxt := ensure(&g.dxt, batch, g.In)
	if g.ReturnSequences {
		dh.Zero()
	} else {
		copy(dh.Data, gradOut.Data)
	}

	for t := T - 1; t >= 0; t-- {
		if g.ReturnSequences {
			for n := 0; n < batch; n++ {
				src := gradOut.Data[(n*T+t)*h : (n*T+t+1)*h]
				dst := dh.Data[n*h : (n+1)*h]
				for j, v := range src {
					dst[j] += v
				}
			}
		}
		hPrev := g.hs[t]
		rt, zt, cand := g.rs[t], g.zs[t], g.cands[t]
		// preH is needed for the reset-gate path; recompute it (cheaper
		// than caching T extra tensors for typical sizes).
		preH := tensor.MatMulInto(ensure(&g.preH, batch, 3*h), hPrev, g.wh)

		for n := 0; n < batch; n++ {
			for j := 0; j < h; j++ {
				dhv := dh.Data[n*h+j]
				r, z, c := rt.Data[n*h+j], zt.Data[n*h+j], cand.Data[n*h+j]
				hp := hPrev.Data[n*h+j]
				dz := dhv * (c - hp) * z * (1 - z)
				dc := dhv * z * (1 - c*c)
				dr := dc * preH.Data[n*3*h+2*h+j] * r * (1 - r)
				dGate.Data[n*3*h+j] = dr
				dGate.Data[n*3*h+h+j] = dz
				dGate.Data[n*3*h+2*h+j] = dc
				dhPrev.Data[n*h+j] = dhv * (1 - z)
				dPreHCand.Data[n*h+j] = dc * r
			}
		}

		xt := timeSliceInto(&g.xt, g.x, t)
		tensor.AddMatMulTransA(g.gwx, xt, dGate)
		for n := 0; n < batch; n++ {
			row := dGate.Data[n*3*h : (n+1)*3*h]
			for j, v := range row {
				g.gb.Data[j] += v
			}
		}
		// For the recurrent weights the candidate lane flows through r∘h,
		// the r/z lanes through h directly. Build the effective gate grad
		// for preH.
		for n := 0; n < batch; n++ {
			for j := 0; j < h; j++ {
				dPreH.Data[n*3*h+j] = dGate.Data[n*3*h+j]
				dPreH.Data[n*3*h+h+j] = dGate.Data[n*3*h+h+j]
				dPreH.Data[n*3*h+2*h+j] = dPreHCand.Data[n*h+j]
			}
		}
		tensor.AddMatMulTransA(g.gwh, hPrev, dPreH)

		tensor.MatMulTransBInto(dxt, dGate, g.wx)
		for n := 0; n < batch; n++ {
			copy(gradIn.Data[(n*T+t)*g.In:(n*T+t+1)*g.In], dxt.Data[n*g.In:(n+1)*g.In])
		}
		tensor.MatMulTransBInto(dhNext, dPreH, g.wh)
		dhNext.AddInPlace(dhPrev)
		dh, dhNext = dhNext, dh
	}
	g.dh, g.dhNext = dh, dhNext
	return gradIn
}

// Params implements Layer.
func (g *GRU) Params() []*tensor.Tensor {
	if g.params == nil {
		g.params = []*tensor.Tensor{g.wx, g.wh, g.b}
	}
	return g.params
}

// Grads implements Layer.
func (g *GRU) Grads() []*tensor.Tensor {
	if g.grads == nil {
		g.grads = []*tensor.Tensor{g.gwx, g.gwh, g.gb}
	}
	return g.grads
}
