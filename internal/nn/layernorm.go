package nn

import (
	"math"

	"cmfl/internal/tensor"
)

// LayerNorm normalises each sample's feature vector to zero mean and unit
// variance, then applies a learned affine transform (gain, bias).
//
// Input shape [batch, features]. Useful between dense layers when training
// deeper heads than the paper's models.
type LayerNorm struct {
	// params/grads cache the Params()/Grads() slices so per-step
	// optimizer sweeps do not allocate.
	params, grads []*tensor.Tensor

	Features int
	Epsilon  float64

	gain, bias   *tensor.Tensor
	gGain, gBias *tensor.Tensor

	x      *tensor.Tensor // forward input
	normed *tensor.Tensor // (x - mean) / std
	invStd []float64

	out, gin *tensor.Tensor // workspace
}

// NewLayerNorm creates a layer-normalisation layer (gain 1, bias 0).
func NewLayerNorm(features int) *LayerNorm {
	l := &LayerNorm{
		Features: features,
		Epsilon:  1e-5,
		gain:     tensor.New(features),
		bias:     tensor.New(features),
		gGain:    tensor.New(features),
		gBias:    tensor.New(features),
	}
	for i := range l.gain.Data {
		l.gain.Data[i] = 1
	}
	return l
}

// Forward implements Layer.
func (l *LayerNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	batch := x.Dim(0)
	f := l.Features
	l.x = x
	ensure(&l.normed, batch, f)
	if cap(l.invStd) < batch {
		l.invStd = make([]float64, batch)
	}
	l.invStd = l.invStd[:batch]
	out := ensure(&l.out, batch, f)
	for n := 0; n < batch; n++ {
		row := x.Data[n*f : (n+1)*f]
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(f)
		var varSum float64
		for _, v := range row {
			d := v - mean
			varSum += d * d
		}
		inv := 1 / math.Sqrt(varSum/float64(f)+l.Epsilon)
		l.invStd[n] = inv
		for j, v := range row {
			nm := (v - mean) * inv
			l.normed.Data[n*f+j] = nm
			out.Data[n*f+j] = nm*l.gain.Data[j] + l.bias.Data[j]
		}
	}
	return out
}

// Backward implements Layer.
func (l *LayerNorm) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	batch := l.x.Dim(0)
	f := l.Features
	gradIn := ensure(&l.gin, batch, f)
	for n := 0; n < batch; n++ {
		gRow := gradOut.Data[n*f : (n+1)*f]
		nRow := l.normed.Data[n*f : (n+1)*f]
		// Accumulate parameter gradients.
		var sumG, sumGN float64 // Σ dy·gain, Σ dy·gain·normed
		for j, g := range gRow {
			l.gGain.Data[j] += g * nRow[j]
			l.gBias.Data[j] += g
			gg := g * l.gain.Data[j]
			sumG += gg
			sumGN += gg * nRow[j]
		}
		inv := l.invStd[n]
		nf := float64(f)
		for j, g := range gRow {
			gg := g * l.gain.Data[j]
			gradIn.Data[n*f+j] = inv * (gg - sumG/nf - nRow[j]*sumGN/nf)
		}
	}
	return gradIn
}

// Params implements Layer.
func (l *LayerNorm) Params() []*tensor.Tensor {
	if l.params == nil {
		l.params = []*tensor.Tensor{l.gain, l.bias}
	}
	return l.params
}

// Grads implements Layer.
func (l *LayerNorm) Grads() []*tensor.Tensor {
	if l.grads == nil {
		l.grads = []*tensor.Tensor{l.gGain, l.gBias}
	}
	return l.grads
}
