package nn

import (
	"math"

	"cmfl/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss over a batch of
// logits [batch, classes] against integer labels, and the gradient of the
// loss with respect to the logits.
//
// The softmax is computed with the max-subtraction trick for numerical
// stability. The returned gradient is already divided by the batch size, so
// it can be fed directly into Network.Backward.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	grad = tensor.New(logits.Dim(0), logits.Dim(1))
	return SoftmaxCrossEntropyInto(grad, logits, labels), grad
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing the logit gradient
// into a caller-owned tensor (shape [batch, classes]) instead of allocating.
func SoftmaxCrossEntropyInto(grad, logits *tensor.Tensor, labels []int) (loss float64) {
	batch, classes := logits.Dim(0), logits.Dim(1)
	inv := 1.0 / float64(batch)
	for n := 0; n < batch; n++ {
		row := logits.Data[n*classes : (n+1)*classes]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		gRow := grad.Data[n*classes : (n+1)*classes]
		for j, v := range row {
			e := math.Exp(v - maxv)
			gRow[j] = e
			sum += e
		}
		y := labels[n]
		loss += -math.Log(gRow[y]/sum + 1e-300)
		for j := range gRow {
			gRow[j] = gRow[j] / sum * inv
		}
		gRow[y] -= inv
	}
	return loss * inv
}

// Argmax returns the index of the maximum value in each row of a
// [batch, classes] tensor.
func Argmax(logits *tensor.Tensor) []int {
	batch, classes := logits.Dim(0), logits.Dim(1)
	out := make([]int, batch)
	for n := 0; n < batch; n++ {
		row := logits.Data[n*classes : (n+1)*classes]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[n] = best
	}
	return out
}
