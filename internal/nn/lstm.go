package nn

import (
	"math"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// LSTM is a single-layer long short-term memory recurrence unrolled over a
// fixed-length sequence, trained with full backpropagation through time.
//
// Input shape [batch, time, in]. If ReturnSequences is true the output is
// [batch, time, hidden] (for stacking LSTM layers, as in the paper's 2-layer
// next-word model); otherwise it is the final hidden state [batch, hidden].
//
// Gate order inside the fused weight matrices is (input, forget, cell,
// output). The forget-gate bias is initialised to 1, the usual fix for
// early-training gradient flow.
type LSTM struct {
	In, Hidden      int
	ReturnSequences bool

	wx, wh, b    *tensor.Tensor // wx: [in, 4h], wh: [h, 4h], b: [4h]
	gwx, gwh, gb *tensor.Tensor

	// Forward caches, one entry per timestep.
	x          *tensor.Tensor
	hs, cs     []*tensor.Tensor // h_t, c_t for t = 0..T (index 0 is the initial zero state)
	gates      []*tensor.Tensor // post-nonlinearity gate activations [batch, 4h]
	tanhCCache []*tensor.Tensor
}

// NewLSTM creates an LSTM layer with Glorot-uniform input weights and
// orthogonal-ish (normalised Gaussian) recurrent weights.
func NewLSTM(in, hidden int, returnSequences bool, rng *xrand.Stream) *LSTM {
	limit := math.Sqrt(6.0 / float64(in+4*hidden))
	l := &LSTM{
		In:              in,
		Hidden:          hidden,
		ReturnSequences: returnSequences,
		wx:              tensor.FromSlice(rng.UniformVec(in*4*hidden, -limit, limit), in, 4*hidden),
		wh:              tensor.FromSlice(rng.NormVec(hidden*4*hidden, 0, 1/math.Sqrt(float64(hidden))), hidden, 4*hidden),
		b:               tensor.New(4 * hidden),
		gwx:             tensor.New(in, 4*hidden),
		gwh:             tensor.New(hidden, 4*hidden),
		gb:              tensor.New(4 * hidden),
	}
	for j := hidden; j < 2*hidden; j++ { // forget-gate bias
		l.b.Data[j] = 1
	}
	return l
}

// Forward implements Layer.
func (l *LSTM) Forward(x *tensor.Tensor) *tensor.Tensor {
	batch, T := x.Dim(0), x.Dim(1)
	h := l.Hidden
	l.x = x
	l.hs = l.hs[:0]
	l.cs = l.cs[:0]
	l.gates = l.gates[:0]
	l.tanhCCache = l.tanhCCache[:0]
	l.hs = append(l.hs, tensor.New(batch, h))
	l.cs = append(l.cs, tensor.New(batch, h))

	var seqOut *tensor.Tensor
	if l.ReturnSequences {
		seqOut = tensor.New(batch, T, h)
	}
	for t := 0; t < T; t++ {
		xt := timeSlice(x, t)
		pre := tensor.MatMul(xt, l.wx)
		pre.AddInPlace(tensor.MatMul(l.hs[t], l.wh))
		for n := 0; n < batch; n++ {
			row := pre.Data[n*4*h : (n+1)*4*h]
			for j, bv := range l.b.Data {
				row[j] += bv
			}
		}
		gate := pre // reuse storage: apply nonlinearities in place
		ct := tensor.New(batch, h)
		ht := tensor.New(batch, h)
		tc := tensor.New(batch, h)
		cPrev := l.cs[t]
		for n := 0; n < batch; n++ {
			row := gate.Data[n*4*h : (n+1)*4*h]
			for j := 0; j < h; j++ {
				i := sigmoid(row[j])
				f := sigmoid(row[h+j])
				g := math.Tanh(row[2*h+j])
				o := sigmoid(row[3*h+j])
				row[j], row[h+j], row[2*h+j], row[3*h+j] = i, f, g, o
				c := f*cPrev.Data[n*h+j] + i*g
				t2 := math.Tanh(c)
				ct.Data[n*h+j] = c
				tc.Data[n*h+j] = t2
				ht.Data[n*h+j] = o * t2
			}
		}
		l.gates = append(l.gates, gate)
		l.cs = append(l.cs, ct)
		l.hs = append(l.hs, ht)
		l.tanhCCache = append(l.tanhCCache, tc)
		if l.ReturnSequences {
			for n := 0; n < batch; n++ {
				copy(seqOut.Data[(n*T+t)*h:(n*T+t+1)*h], ht.Data[n*h:(n+1)*h])
			}
		}
	}
	if l.ReturnSequences {
		return seqOut
	}
	return l.hs[T]
}

// Backward implements Layer.
func (l *LSTM) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	batch, T := l.x.Dim(0), l.x.Dim(1)
	h := l.Hidden
	gradIn := tensor.New(batch, T, l.In)
	dh := tensor.New(batch, h) // running dL/dh_t
	dc := tensor.New(batch, h) // running dL/dc_t
	if !l.ReturnSequences {
		dh.AddInPlace(gradOut)
	}

	for t := T - 1; t >= 0; t-- {
		if l.ReturnSequences {
			for n := 0; n < batch; n++ {
				src := gradOut.Data[(n*T+t)*h : (n*T+t+1)*h]
				dst := dh.Data[n*h : (n+1)*h]
				for j, v := range src {
					dst[j] += v
				}
			}
		}
		gate := l.gates[t]
		cPrev := l.cs[t]
		tc := l.tanhCCache[t]
		dGate := tensor.New(batch, 4*h) // grads wrt pre-activations
		dcPrev := tensor.New(batch, h)
		for n := 0; n < batch; n++ {
			gRow := gate.Data[n*4*h : (n+1)*4*h]
			for j := 0; j < h; j++ {
				i, f, g, o := gRow[j], gRow[h+j], gRow[2*h+j], gRow[3*h+j]
				t2 := tc.Data[n*h+j]
				dhv := dh.Data[n*h+j]
				dcv := dc.Data[n*h+j] + dhv*o*(1-t2*t2)
				dGate.Data[n*4*h+j] = dcv * g * i * (1 - i)                   // input gate
				dGate.Data[n*4*h+h+j] = dcv * cPrev.Data[n*h+j] * f * (1 - f) // forget gate
				dGate.Data[n*4*h+2*h+j] = dcv * i * (1 - g*g)                 // candidate
				dGate.Data[n*4*h+3*h+j] = dhv * t2 * o * (1 - o)              // output gate
				dcPrev.Data[n*h+j] = dcv * f
			}
		}
		xt := timeSlice(l.x, t)
		l.gwx.AddInPlace(tensor.MatMulTransA(xt, dGate))
		l.gwh.AddInPlace(tensor.MatMulTransA(l.hs[t], dGate))
		for n := 0; n < batch; n++ {
			row := dGate.Data[n*4*h : (n+1)*4*h]
			for j, v := range row {
				l.gb.Data[j] += v
			}
		}
		dxt := tensor.MatMulTransB(dGate, l.wx)
		for n := 0; n < batch; n++ {
			copy(gradIn.Data[(n*T+t)*l.In:(n*T+t+1)*l.In], dxt.Data[n*l.In:(n+1)*l.In])
		}
		dh = tensor.MatMulTransB(dGate, l.wh) // dL/dh_{t-1}
		dc = dcPrev
	}
	return gradIn
}

// Params implements Layer.
func (l *LSTM) Params() []*tensor.Tensor { return []*tensor.Tensor{l.wx, l.wh, l.b} }

// Grads implements Layer.
func (l *LSTM) Grads() []*tensor.Tensor { return []*tensor.Tensor{l.gwx, l.gwh, l.gb} }

// timeSlice extracts x[:, t, :] as a fresh [batch, dim] tensor.
func timeSlice(x *tensor.Tensor, t int) *tensor.Tensor {
	batch, T, dim := x.Dim(0), x.Dim(1), x.Dim(2)
	out := tensor.New(batch, dim)
	for n := 0; n < batch; n++ {
		copy(out.Data[n*dim:(n+1)*dim], x.Data[(n*T+t)*dim:(n*T+t+1)*dim])
	}
	return out
}
