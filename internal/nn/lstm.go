package nn

import (
	"math"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// LSTM is a single-layer long short-term memory recurrence unrolled over a
// fixed-length sequence, trained with full backpropagation through time.
//
// Input shape [batch, time, in]. If ReturnSequences is true the output is
// [batch, time, hidden] (for stacking LSTM layers, as in the paper's 2-layer
// next-word model); otherwise it is the final hidden state [batch, hidden].
//
// Gate order inside the fused weight matrices is (input, forget, cell,
// output). The forget-gate bias is initialised to 1, the usual fix for
// early-training gradient flow.
//
// All per-timestep caches and BPTT scratch live in persistent per-layer
// buffers (see scratch.go), so steady-state training allocates nothing here.
type LSTM struct {
	// params/grads cache the Params()/Grads() slices so per-step
	// optimizer sweeps do not allocate.
	params, grads []*tensor.Tensor

	In, Hidden      int
	ReturnSequences bool

	wx, wh, b    *tensor.Tensor // wx: [in, 4h], wh: [h, 4h], b: [4h]
	gwx, gwh, gb *tensor.Tensor

	// Forward caches, one entry per timestep.
	x          *tensor.Tensor
	hs, cs     []*tensor.Tensor // h_t, c_t for t = 0..T (index 0 is the initial zero state)
	gates      []*tensor.Tensor // post-nonlinearity gate activations [batch, 4h]
	tanhCCache []*tensor.Tensor

	// Workspace (see scratch.go for lifetime rules).
	seqOut, gin    *tensor.Tensor
	xt, dxt, dGate *tensor.Tensor
	dh, dhNext     *tensor.Tensor // ping-pong dL/dh_t buffers
	dc, dcPrev     *tensor.Tensor // ping-pong dL/dc_t buffers
}

// NewLSTM creates an LSTM layer with Glorot-uniform input weights and
// orthogonal-ish (normalised Gaussian) recurrent weights.
func NewLSTM(in, hidden int, returnSequences bool, rng *xrand.Stream) *LSTM {
	limit := math.Sqrt(6.0 / float64(in+4*hidden))
	l := &LSTM{
		In:              in,
		Hidden:          hidden,
		ReturnSequences: returnSequences,
		wx:              tensor.FromSlice(rng.UniformVec(in*4*hidden, -limit, limit), in, 4*hidden),
		wh:              tensor.FromSlice(rng.NormVec(hidden*4*hidden, 0, 1/math.Sqrt(float64(hidden))), hidden, 4*hidden),
		b:               tensor.New(4 * hidden),
		gwx:             tensor.New(in, 4*hidden),
		gwh:             tensor.New(hidden, 4*hidden),
		gb:              tensor.New(4 * hidden),
	}
	for j := hidden; j < 2*hidden; j++ { // forget-gate bias
		l.b.Data[j] = 1
	}
	return l
}

// Forward implements Layer.
func (l *LSTM) Forward(x *tensor.Tensor) *tensor.Tensor {
	batch, T := x.Dim(0), x.Dim(1)
	h := l.Hidden
	l.x = x
	l.hs = ensureSeq(l.hs, T+1, batch, h)
	l.cs = ensureSeq(l.cs, T+1, batch, h)
	l.gates = ensureSeq(l.gates, T, batch, 4*h)
	l.tanhCCache = ensureSeq(l.tanhCCache, T, batch, h)
	l.hs[0].Zero()
	l.cs[0].Zero()

	var seqOut *tensor.Tensor
	if l.ReturnSequences {
		seqOut = ensure(&l.seqOut, batch, T, h)
	}
	for t := 0; t < T; t++ {
		xt := timeSliceInto(&l.xt, x, t)
		gate := l.gates[t]
		tensor.MatMulInto(gate, xt, l.wx)
		tensor.AddMatMul(gate, l.hs[t], l.wh)
		for n := 0; n < batch; n++ {
			row := gate.Data[n*4*h : (n+1)*4*h]
			for j, bv := range l.b.Data {
				row[j] += bv
			}
		}
		ct := l.cs[t+1]
		ht := l.hs[t+1]
		tc := l.tanhCCache[t]
		cPrev := l.cs[t]
		for n := 0; n < batch; n++ {
			row := gate.Data[n*4*h : (n+1)*4*h]
			for j := 0; j < h; j++ {
				i := sigmoid(row[j])
				f := sigmoid(row[h+j])
				g := math.Tanh(row[2*h+j])
				o := sigmoid(row[3*h+j])
				row[j], row[h+j], row[2*h+j], row[3*h+j] = i, f, g, o
				c := f*cPrev.Data[n*h+j] + i*g
				t2 := math.Tanh(c)
				ct.Data[n*h+j] = c
				tc.Data[n*h+j] = t2
				ht.Data[n*h+j] = o * t2
			}
		}
		if l.ReturnSequences {
			for n := 0; n < batch; n++ {
				copy(seqOut.Data[(n*T+t)*h:(n*T+t+1)*h], ht.Data[n*h:(n+1)*h])
			}
		}
	}
	if l.ReturnSequences {
		return seqOut
	}
	return l.hs[T]
}

// Backward implements Layer.
func (l *LSTM) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	batch, T := l.x.Dim(0), l.x.Dim(1)
	h := l.Hidden
	gradIn := ensure(&l.gin, batch, T, l.In)
	dh := ensure(&l.dh, batch, h) // running dL/dh_t
	dc := ensure(&l.dc, batch, h) // running dL/dc_t
	dhNext := ensure(&l.dhNext, batch, h)
	dcPrev := ensure(&l.dcPrev, batch, h)
	dGate := ensure(&l.dGate, batch, 4*h)
	dxt := ensure(&l.dxt, batch, l.In)
	dc.Zero()
	if l.ReturnSequences {
		dh.Zero()
	} else {
		copy(dh.Data, gradOut.Data)
	}

	for t := T - 1; t >= 0; t-- {
		if l.ReturnSequences {
			for n := 0; n < batch; n++ {
				src := gradOut.Data[(n*T+t)*h : (n*T+t+1)*h]
				dst := dh.Data[n*h : (n+1)*h]
				for j, v := range src {
					dst[j] += v
				}
			}
		}
		gate := l.gates[t]
		cPrev := l.cs[t]
		tc := l.tanhCCache[t]
		for n := 0; n < batch; n++ {
			gRow := gate.Data[n*4*h : (n+1)*4*h]
			for j := 0; j < h; j++ {
				i, f, g, o := gRow[j], gRow[h+j], gRow[2*h+j], gRow[3*h+j]
				t2 := tc.Data[n*h+j]
				dhv := dh.Data[n*h+j]
				dcv := dc.Data[n*h+j] + dhv*o*(1-t2*t2)
				dGate.Data[n*4*h+j] = dcv * g * i * (1 - i)                   // input gate
				dGate.Data[n*4*h+h+j] = dcv * cPrev.Data[n*h+j] * f * (1 - f) // forget gate
				dGate.Data[n*4*h+2*h+j] = dcv * i * (1 - g*g)                 // candidate
				dGate.Data[n*4*h+3*h+j] = dhv * t2 * o * (1 - o)              // output gate
				dcPrev.Data[n*h+j] = dcv * f
			}
		}
		xt := timeSliceInto(&l.xt, l.x, t)
		tensor.AddMatMulTransA(l.gwx, xt, dGate)
		tensor.AddMatMulTransA(l.gwh, l.hs[t], dGate)
		for n := 0; n < batch; n++ {
			row := dGate.Data[n*4*h : (n+1)*4*h]
			for j, v := range row {
				l.gb.Data[j] += v
			}
		}
		tensor.MatMulTransBInto(dxt, dGate, l.wx)
		for n := 0; n < batch; n++ {
			copy(gradIn.Data[(n*T+t)*l.In:(n*T+t+1)*l.In], dxt.Data[n*l.In:(n+1)*l.In])
		}
		tensor.MatMulTransBInto(dhNext, dGate, l.wh) // dL/dh_{t-1}
		dh, dhNext = dhNext, dh
		dc, dcPrev = dcPrev, dc
	}
	l.dh, l.dhNext = dh, dhNext
	l.dc, l.dcPrev = dc, dcPrev
	return gradIn
}

// Params implements Layer.
func (l *LSTM) Params() []*tensor.Tensor {
	if l.params == nil {
		l.params = []*tensor.Tensor{l.wx, l.wh, l.b}
	}
	return l.params
}

// Grads implements Layer.
func (l *LSTM) Grads() []*tensor.Tensor {
	if l.grads == nil {
		l.grads = []*tensor.Tensor{l.gwx, l.gwh, l.gb}
	}
	return l.grads
}

// timeSliceInto copies x[:, t, :] into the reusable buffer *buf as a
// [batch, dim] tensor.
func timeSliceInto(buf **tensor.Tensor, x *tensor.Tensor, t int) *tensor.Tensor {
	batch, T, dim := x.Dim(0), x.Dim(1), x.Dim(2)
	out := ensure(buf, batch, dim)
	for n := 0; n < batch; n++ {
		copy(out.Data[n*dim:(n+1)*dim], x.Data[(n*T+t)*dim:(n*T+t+1)*dim])
	}
	return out
}
