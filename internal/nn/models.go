package nn

import (
	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// CNNConfig describes the digit-recognition CNN from the paper (two
// convolution layers, each followed by ReLU and 2×2 max pooling, then a
// hidden dense layer and a classification head).
type CNNConfig struct {
	ImageSize int // input is ImageSize×ImageSize, single channel
	Kernel    int // convolution kernel size (paper: 5)
	Conv1     int // channels of the first convolution
	Conv2     int // channels of the second convolution
	Hidden    int // dense hidden width
	Classes   int
}

// DefaultCNNConfig is the scaled-down MNIST CNN used for fast experiments.
// Paper-scale values (28×28, 5×5 kernels) are reachable through the fields.
func DefaultCNNConfig() CNNConfig {
	return CNNConfig{ImageSize: 14, Kernel: 3, Conv1: 4, Conv2: 8, Hidden: 32, Classes: 10}
}

// NewCNN builds the digit CNN. The layer stack mirrors the paper's MNIST
// model: conv → ReLU → pool → conv → ReLU → pool → dense → ReLU → dense.
func NewCNN(cfg CNNConfig, rng *xrand.Stream) *Network {
	s1 := (cfg.ImageSize - cfg.Kernel + 1) / 2
	s2 := (s1 - cfg.Kernel + 1) / 2
	flat := cfg.Conv2 * s2 * s2
	return NewNetwork(
		NewConv2D(1, cfg.Conv1, cfg.Kernel, rng),
		NewReLU(),
		NewMaxPool2(),
		NewConv2D(cfg.Conv1, cfg.Conv2, cfg.Kernel, rng),
		NewReLU(),
		NewMaxPool2(),
		NewFlatten(),
		NewDense(flat, cfg.Hidden, rng),
		NewReLU(),
		NewDense(cfg.Hidden, cfg.Classes, rng),
	)
}

// LSTMConfig describes the word-level next-word-prediction model (paper:
// 2-layer LSTM with 256 units per layer over a 10-word window).
type LSTMConfig struct {
	Vocab  int
	Embed  int
	Hidden int
	Layers int // number of stacked LSTM layers
}

// DefaultLSTMConfig is the scaled-down next-word model.
func DefaultLSTMConfig(vocab int) LSTMConfig {
	return LSTMConfig{Vocab: vocab, Embed: 16, Hidden: 32, Layers: 2}
}

// NewNextWordLSTM builds embedding → stacked LSTM → dense(vocab).
func NewNextWordLSTM(cfg LSTMConfig, rng *xrand.Stream) *Network {
	layers := []Layer{NewEmbedding(cfg.Vocab, cfg.Embed, rng)}
	in := cfg.Embed
	for i := 0; i < cfg.Layers; i++ {
		returnSeq := i < cfg.Layers-1
		layers = append(layers, NewLSTM(in, cfg.Hidden, returnSeq, rng))
		in = cfg.Hidden
	}
	layers = append(layers, NewDense(cfg.Hidden, cfg.Vocab, rng))
	return NewNetwork(layers...)
}

// NewMLP builds a multilayer perceptron with ReLU activations between the
// given layer widths (e.g. NewMLP(rng, 561, 64, 2)).
func NewMLP(rng *xrand.Stream, widths ...int) *Network {
	var layers []Layer
	for i := 0; i+1 < len(widths); i++ {
		layers = append(layers, NewDense(widths[i], widths[i+1], rng))
		if i+2 < len(widths) {
			layers = append(layers, NewReLU())
		}
	}
	return NewNetwork(layers...)
}

// NewLogistic builds a single-layer linear classifier (softmax trained).
func NewLogistic(in, classes int, rng *xrand.Stream) *Network {
	return NewNetwork(NewDense(in, classes, rng))
}

// TrainBatch runs one SGD step on a classification batch and returns the
// batch loss. Inputs keep whatever shape the first layer expects; labels are
// class indices.
func TrainBatch(net *Network, x *tensor.Tensor, labels []int, lr float64) float64 {
	net.ZeroGrads()
	logits := net.Forward(x)
	grad := ensure(&net.lossGrad, logits.Dim(0), logits.Dim(1))
	loss := SoftmaxCrossEntropyInto(grad, logits, labels)
	net.Backward(grad)
	net.SGDStep(lr)
	return loss
}

// Accuracy evaluates classification accuracy of the network on (x, labels).
func Accuracy(net *Network, x *tensor.Tensor, labels []int) float64 {
	logits := net.Forward(x)
	pred := Argmax(logits)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
