// Package nn is a small, dependency-free neural-network library with manual
// backpropagation.
//
// It provides the layers needed to reproduce the CMFL paper's workloads: a
// convolutional digit classifier (MNIST-style CNN), a word-level LSTM
// language model, and linear/logistic models for the multi-task experiments.
// Every layer implements Layer; a Network chains layers and exposes its
// parameters as one flat []float64 vector, which is the unit of exchange in
// the federated-learning packages (updates are deltas of this vector).
//
// Gradients are verified against numerical differentiation in the test
// suite, so the federated results downstream rest on checked calculus rather
// than trust.
package nn

import (
	"fmt"

	"cmfl/internal/tensor"
)

// Layer is a differentiable computation stage.
//
// Forward consumes an activation tensor and returns the next activation.
// Backward consumes the gradient of the loss with respect to the layer's
// output, accumulates gradients of the layer's parameters, and returns the
// gradient with respect to the layer's input. A Backward call must be
// preceded by the matching Forward call (layers cache forward state).
type Layer interface {
	// Forward computes the layer output for input x.
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward propagates gradOut (dLoss/dOutput) and returns dLoss/dInput.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's parameter tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns gradient tensors aligned with Params.
	Grads() []*tensor.Tensor
}

// Network is an ordered sequence of layers trained end to end.
type Network struct {
	layers []Layer

	lossGrad *tensor.Tensor // TrainBatch scratch (see scratch.go)
}

// NewNetwork builds a network from the given layers.
func NewNetwork(layers ...Layer) *Network {
	return &Network{layers: layers}
}

// Layers returns the underlying layer slice (shared, not copied).
func (n *Network) Layers() []Layer { return n.layers }

// Forward runs all layers in order.
//
//cmfl:hotpath
func (n *Network) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range n.layers {
		x = l.Forward(x)
	}
	return x
}

// inputGradSkipper is implemented by layers that can omit their input
// gradient. The first layer's input gradient is never consumed, so Backward
// tells it to skip that work (for Conv2D: the dcols product and the col2im
// scatter — a measurable share of a CNN training step).
type inputGradSkipper interface {
	setSkipInputGrad(bool)
}

// Backward propagates the output gradient through all layers in reverse.
//
//cmfl:hotpath
func (n *Network) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(n.layers) > 0 {
		if s, ok := n.layers[0].(inputGradSkipper); ok {
			s.setSkipInputGrad(true)
		}
	}
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].Backward(grad)
	}
	return grad
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.layers {
		for _, p := range l.Params() {
			total += p.Len()
		}
	}
	return total
}

// ParamSegments returns the length of each parameter tensor in ParamVector
// order, so callers can address per-tensor segments of the flat vector
// (e.g. layerwise partial uploads).
func (n *Network) ParamSegments() []int {
	var segs []int
	for _, l := range n.layers {
		for _, p := range l.Params() {
			segs = append(segs, p.Len())
		}
	}
	return segs
}

// ParamVector copies all parameters into one flat vector.
func (n *Network) ParamVector() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, l := range n.layers {
		for _, p := range l.Params() {
			out = append(out, p.Data...)
		}
	}
	return out
}

// SetParamVector overwrites all parameters from a flat vector produced by
// ParamVector. It returns an error if the length does not match.
func (n *Network) SetParamVector(v []float64) error {
	if len(v) != n.NumParams() {
		return fmt.Errorf("nn: parameter vector has %d elements, network has %d", len(v), n.NumParams())
	}
	off := 0
	for _, l := range n.layers {
		for _, p := range l.Params() {
			copy(p.Data, v[off:off+p.Len()])
			off += p.Len()
		}
	}
	return nil
}

// GradVector copies all accumulated gradients into one flat vector aligned
// with ParamVector.
func (n *Network) GradVector() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, l := range n.layers {
		for _, g := range l.Grads() {
			out = append(out, g.Data...)
		}
	}
	return out
}

// ZeroGrads resets all accumulated gradients.
//
//cmfl:hotpath
func (n *Network) ZeroGrads() {
	for _, l := range n.layers {
		for _, g := range l.Grads() {
			g.Zero()
		}
	}
}

// SGDStep applies one vanilla SGD update: p -= lr * grad.
//
//cmfl:hotpath
func (n *Network) SGDStep(lr float64) {
	for _, l := range n.layers {
		params, grads := l.Params(), l.Grads()
		for i, p := range params {
			p.AxpyInPlace(-lr, grads[i])
		}
	}
}

// DecayToward pulls every parameter toward the flat target vector:
// p -= factor * (p - target). This is the FedProx proximal correction
// applied in place, equivalent to (but allocation-free compared with)
// round-tripping through ParamVector/SetParamVector.
func (n *Network) DecayToward(target []float64, factor float64) error {
	if len(target) != n.NumParams() {
		return fmt.Errorf("nn: target vector has %d elements, network has %d", len(target), n.NumParams())
	}
	off := 0
	for _, l := range n.layers {
		for _, p := range l.Params() {
			seg := target[off : off+p.Len()]
			for i := range p.Data {
				p.Data[i] -= factor * (p.Data[i] - seg[i])
			}
			off += p.Len()
		}
	}
	return nil
}
