package nn

import (
	"math"
	"testing"
	"testing/quick"

	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

func TestParamVectorRoundTrip(t *testing.T) {
	rng := xrand.New(10)
	net := NewCNN(CNNConfig{ImageSize: 12, Kernel: 3, Conv1: 2, Conv2: 3, Hidden: 8, Classes: 4}, rng)
	v := net.ParamVector()
	if len(v) != net.NumParams() {
		t.Fatalf("ParamVector length %d != NumParams %d", len(v), net.NumParams())
	}
	// Perturb and write back.
	for i := range v {
		v[i] += 0.5
	}
	if err := net.SetParamVector(v); err != nil {
		t.Fatalf("SetParamVector: %v", err)
	}
	got := net.ParamVector()
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("param %d = %v, want %v", i, got[i], v[i])
		}
	}
}

func TestSetParamVectorLengthError(t *testing.T) {
	rng := xrand.New(11)
	net := NewLogistic(4, 2, rng)
	if err := net.SetParamVector(make([]float64, 3)); err == nil {
		t.Fatal("expected error for wrong vector length")
	}
}

func TestZeroGrads(t *testing.T) {
	rng := xrand.New(12)
	net := NewNetwork(NewDense(3, 2, rng))
	x := tensor.FromSlice(rng.NormVec(2*3, 0, 1), 2, 3)
	logits := net.Forward(x)
	_, grad := SoftmaxCrossEntropy(logits, []int{0, 1})
	net.Backward(grad)
	nonzero := false
	for _, g := range net.GradVector() {
		if g != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("expected nonzero gradients after backward")
	}
	net.ZeroGrads()
	for i, g := range net.GradVector() {
		if g != 0 {
			t.Fatalf("grad %d = %v after ZeroGrads", i, g)
		}
	}
}

func TestSGDStepMovesAgainstGradient(t *testing.T) {
	rng := xrand.New(13)
	net := NewLogistic(3, 2, rng)
	x := tensor.FromSlice(rng.NormVec(4*3, 0, 1), 4, 3)
	labels := []int{0, 1, 0, 1}
	lossBefore, _ := SoftmaxCrossEntropy(net.Forward(x.Clone()), labels)
	for i := 0; i < 50; i++ {
		TrainBatch(net, x.Clone(), labels, 0.5)
	}
	lossAfter, _ := SoftmaxCrossEntropy(net.Forward(x.Clone()), labels)
	if lossAfter >= lossBefore {
		t.Fatalf("loss did not decrease: %v -> %v", lossBefore, lossAfter)
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	logits := tensor.FromSlice([]float64{0, 0}, 1, 2)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("loss = %v, want ln2", loss)
	}
	if math.Abs(grad.Data[0]-(-0.5)) > 1e-12 || math.Abs(grad.Data[1]-0.5) > 1e-12 {
		t.Fatalf("grad = %v, want [-0.5 0.5]", grad.Data)
	}
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	logits := tensor.FromSlice([]float64{1000, -1000, 0}, 1, 3)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %v, want finite", loss)
	}
	for i, g := range grad.Data {
		if math.IsNaN(g) {
			t.Fatalf("grad %d is NaN", i)
		}
	}
}

func TestSoftmaxGradSumsToZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		batch, classes := 1+rng.Intn(4), 2+rng.Intn(5)
		logits := tensor.FromSlice(rng.NormVec(batch*classes, 0, 3), batch, classes)
		labels := make([]int, batch)
		for i := range labels {
			labels[i] = rng.Intn(classes)
		}
		_, grad := SoftmaxCrossEntropy(logits, labels)
		for n := 0; n < batch; n++ {
			var sum float64
			for j := 0; j < classes; j++ {
				sum += grad.At(n, j)
			}
			if math.Abs(sum) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestArgmax(t *testing.T) {
	logits := tensor.FromSlice([]float64{1, 3, 2, 9, 0, -1}, 2, 3)
	got := Argmax(logits)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Argmax = %v, want [1 0]", got)
	}
}

func TestAccuracyPerfectAndZero(t *testing.T) {
	rng := xrand.New(14)
	net := NewLogistic(2, 2, rng)
	// Force weights so that class = argmax picks feature sign.
	if err := net.SetParamVector([]float64{1, -1, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice([]float64{5, 0, -5, 0}, 2, 2)
	if acc := Accuracy(net, x, []int{0, 1}); acc != 1 {
		t.Fatalf("accuracy = %v, want 1", acc)
	}
	if acc := Accuracy(net, x, []int{1, 0}); acc != 0 {
		t.Fatalf("accuracy = %v, want 0", acc)
	}
}

func TestEmbeddingClampsOutOfRangeIDs(t *testing.T) {
	rng := xrand.New(15)
	e := NewEmbedding(4, 3, rng)
	x := tensor.FromSlice([]float64{-2, 9}, 1, 2)
	out := e.Forward(x)
	w := e.Params()[0]
	for j := 0; j < 3; j++ {
		if out.Data[j] != w.At(0, j) {
			t.Fatalf("negative id should clamp to row 0")
		}
		if out.Data[3+j] != w.At(3, j) {
			t.Fatalf("overflow id should clamp to last row")
		}
	}
}

func TestLSTMReturnSequencesShape(t *testing.T) {
	rng := xrand.New(16)
	l := NewLSTM(3, 5, true, rng)
	x := tensor.FromSlice(rng.NormVec(2*4*3, 0, 1), 2, 4, 3)
	out := l.Forward(x)
	if out.Dim(0) != 2 || out.Dim(1) != 4 || out.Dim(2) != 5 {
		t.Fatalf("sequence output shape = %v, want [2 4 5]", out.Shape)
	}
	lastOnly := NewLSTM(3, 5, false, rng)
	out2 := lastOnly.Forward(x)
	if out2.Dim(0) != 2 || out2.Dim(1) != 5 {
		t.Fatalf("last-state output shape = %v, want [2 5]", out2.Shape)
	}
}

func TestLSTMSequenceLastStepMatchesLastOnly(t *testing.T) {
	rng := xrand.New(17)
	seq := NewLSTM(3, 4, true, rng)
	// Copy parameters into a last-only twin.
	last := NewLSTM(3, 4, false, xrand.New(99))
	for i, p := range seq.Params() {
		copy(last.Params()[i].Data, p.Data)
	}
	x := tensor.FromSlice(rng.NormVec(2*5*3, 0, 1), 2, 5, 3)
	so := seq.Forward(x)
	lo := last.Forward(x)
	T, h := 5, 4
	for n := 0; n < 2; n++ {
		for j := 0; j < h; j++ {
			a := so.Data[(n*T+T-1)*h+j]
			b := lo.Data[n*h+j]
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("sequence[T-1] != last-state at (%d,%d): %v vs %v", n, j, a, b)
			}
		}
	}
}

func TestCNNOutputShape(t *testing.T) {
	rng := xrand.New(18)
	cfg := DefaultCNNConfig()
	net := NewCNN(cfg, rng)
	x := tensor.New(3, 1, cfg.ImageSize, cfg.ImageSize)
	out := net.Forward(x)
	if out.Dim(0) != 3 || out.Dim(1) != cfg.Classes {
		t.Fatalf("CNN output shape = %v, want [3 %d]", out.Shape, cfg.Classes)
	}
}

func TestNextWordLSTMOutputShape(t *testing.T) {
	rng := xrand.New(19)
	cfg := DefaultLSTMConfig(50)
	net := NewNextWordLSTM(cfg, rng)
	x := tensor.New(2, 10)
	out := net.Forward(x)
	if out.Dim(0) != 2 || out.Dim(1) != 50 {
		t.Fatalf("LSTM output shape = %v, want [2 50]", out.Shape)
	}
}

func TestMLPLearnsXORish(t *testing.T) {
	rng := xrand.New(20)
	net := NewMLP(rng, 2, 8, 2)
	xs := []float64{0, 0, 0, 1, 1, 0, 1, 1}
	labels := []int{0, 1, 1, 0}
	x := tensor.FromSlice(xs, 4, 2)
	for i := 0; i < 2000; i++ {
		TrainBatch(net, x.Clone(), labels, 0.3)
	}
	if acc := Accuracy(net, x, labels); acc < 1 {
		t.Fatalf("MLP failed to fit XOR: accuracy %v", acc)
	}
}

func TestDeterministicInitialisation(t *testing.T) {
	a := NewCNN(DefaultCNNConfig(), xrand.Derive(7, "init", 0))
	b := NewCNN(DefaultCNNConfig(), xrand.Derive(7, "init", 0))
	av, bv := a.ParamVector(), b.ParamVector()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("same-seed networks differ at param %d", i)
		}
	}
}
