package nn

import (
	"math"

	"cmfl/internal/tensor"
)

// Optimizer updates a network's parameters from its accumulated gradients.
// Implementations keep per-parameter state (velocities, moments) keyed by
// position, so an Optimizer must be used with a single Network.
type Optimizer interface {
	// Step consumes the current gradients and updates the parameters.
	Step(net *Network)
	// Reset clears optimizer state (e.g. between federated rounds when the
	// starting point jumps to a freshly broadcast model).
	Reset()
}

// SGD is stochastic gradient descent with optional momentum and weight
// decay: v ← μv − lr·(g + wd·p); p ← p + v.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity []*tensor.Tensor
}

// NewSGD creates a plain SGD optimizer (set Momentum/WeightDecay directly).
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step implements Optimizer.
func (o *SGD) Step(net *Network) {
	idx := 0
	for _, l := range net.Layers() {
		params, grads := l.Params(), l.Grads()
		for i, p := range params {
			g := grads[i]
			//cmfl:lint-ignore floateq exact 0 is the config sentinel disabling the term
			if o.Momentum == 0 && o.WeightDecay == 0 {
				p.AxpyInPlace(-o.LR, g)
				idx++
				continue
			}
			for len(o.velocity) <= idx {
				o.velocity = append(o.velocity, tensor.New(p.Shape...))
			}
			v := o.velocity[idx]
			for j := range p.Data {
				grad := g.Data[j] + o.WeightDecay*p.Data[j]
				v.Data[j] = o.Momentum*v.Data[j] - o.LR*grad
				p.Data[j] += v.Data[j]
			}
			idx++
		}
	}
}

// Reset implements Optimizer.
func (o *SGD) Reset() { o.velocity = nil }

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t    int
	m, v []*tensor.Tensor
}

// NewAdam creates an Adam optimizer with the usual defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step implements Optimizer.
func (o *Adam) Step(net *Network) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	idx := 0
	for _, l := range net.Layers() {
		params, grads := l.Params(), l.Grads()
		for i, p := range params {
			g := grads[i]
			for len(o.m) <= idx {
				o.m = append(o.m, tensor.New(p.Shape...))
				o.v = append(o.v, tensor.New(p.Shape...))
			}
			m, v := o.m[idx], o.v[idx]
			for j := range p.Data {
				gj := g.Data[j]
				m.Data[j] = o.Beta1*m.Data[j] + (1-o.Beta1)*gj
				v.Data[j] = o.Beta2*v.Data[j] + (1-o.Beta2)*gj*gj
				mh := m.Data[j] / bc1
				vh := v.Data[j] / bc2
				p.Data[j] -= o.LR * mh / (math.Sqrt(vh) + o.Epsilon)
			}
			idx++
		}
	}
}

// Reset implements Optimizer.
func (o *Adam) Reset() {
	o.t = 0
	o.m, o.v = nil, nil
}

// TrainBatchWith runs one optimisation step using the given optimizer and
// returns the batch loss (the Optimizer analogue of TrainBatch).
func TrainBatchWith(net *Network, x *tensor.Tensor, labels []int, opt Optimizer) float64 {
	net.ZeroGrads()
	logits := net.Forward(x)
	loss, grad := SoftmaxCrossEntropy(logits, labels)
	net.Backward(grad)
	opt.Step(net)
	return loss
}
