package nn

import "cmfl/internal/tensor"

// Scratch-buffer helpers for allocation-free training hot paths.
//
// Every layer keeps persistent workspace tensors that are resized (never
// reallocated once capacity suffices) on each Forward/Backward. The rules:
//
//   - A buffer returned by ensure has unspecified contents; the caller must
//     fully overwrite it or Zero it before accumulating.
//   - Layer outputs alias layer-owned buffers. They are valid until the
//     layer's next Forward/Backward call — exactly the lifetime the
//     Network's forward/backward pass needs. Callers that retain an output
//     across steps must Clone it.

// ensure returns a tensor of the given shape, reusing *buf's backing array
// when it has capacity and allocating (and storing into *buf) otherwise.
//
//cmfl:hotpath
func ensure(buf **tensor.Tensor, shape ...int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	t := *buf
	if t == nil || cap(t.Data) < n {
		// Construct inline rather than via tensor.New: New's panic path
		// hands shape to fmt, which would force the variadic slice onto
		// the heap at every ensure call site.
		//cmfl:lint-ignore hotpathalloc cold grow path: allocates once when the scratch buffer first appears or outgrows its cap
		t = &tensor.Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
		*buf = t
		return t
	}
	t.Data = t.Data[:n]
	t.Shape = append(t.Shape[:0], shape...)
	return t
}

// ensureSeq resizes a slice of per-timestep buffers to count tensors of the
// given shape, reusing existing entries.
//
//cmfl:hotpath
func ensureSeq(bufs []*tensor.Tensor, count int, shape ...int) []*tensor.Tensor {
	for len(bufs) < count {
		//cmfl:lint-ignore hotpathalloc amortized grow of the per-timestep buffer list; steady state reuses it
		bufs = append(bufs, nil)
	}
	bufs = bufs[:count]
	for i := range bufs {
		ensure(&bufs[i], shape...)
	}
	return bufs
}

// viewAs points the reusable view *buf at data with the given shape, without
// copying. The view shares data's backing array.
//
//cmfl:hotpath
func viewAs(buf **tensor.Tensor, data []float64, shape ...int) *tensor.Tensor {
	t := *buf
	if t == nil {
		//cmfl:lint-ignore hotpathalloc one-time allocation of the reusable view header
		t = &tensor.Tensor{}
		*buf = t
	}
	t.Data = data
	t.Shape = append(t.Shape[:0], shape...)
	return t
}
