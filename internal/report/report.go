// Package report renders experiment results as plain-text tables, ASCII
// line plots and CSV, so every table and figure of the paper can be
// regenerated on a terminal without plotting dependencies.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table renders rows under headers with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line for Plot.
type Series struct {
	Name string
	X, Y []float64
}

// Plot renders the series on a width×height ASCII grid with min/max axis
// labels. NaN points are skipped. Each series uses its own marker rune.
func Plot(title string, width, height int, series ...Series) string {
	if width < 10 {
		width = 10
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			any = true
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if !any {
		return title + "\n(no data)\n"
	}
	//cmfl:lint-ignore floateq degenerate plot range guard; widened to a bit-identical span
	if maxX == minX {
		maxX = minX + 1
	}
	//cmfl:lint-ignore floateq degenerate plot range guard; widened to a bit-identical span
	if maxY == minY {
		maxY = minY + 1
	}
	markers := []rune{'*', 'o', '+', 'x', '#', '@'}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			cy := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			grid[cy][cx] = m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	fmt.Fprintf(&b, "y: [%.4g, %.4g]  x: [%.4g, %.4g]\n", minY, maxY, minX, maxX)
	for _, row := range grid {
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteString("|\n")
	}
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("+\n")
	return b.String()
}

// CSV renders aligned columns as comma-separated text with a header row.
// Columns shorter than the longest column are padded with empty cells.
func CSV(headers []string, cols ...[]float64) string {
	var b strings.Builder
	b.WriteString(strings.Join(headers, ","))
	b.WriteByte('\n')
	rows := 0
	for _, c := range cols {
		if len(c) > rows {
			rows = len(c)
		}
	}
	for r := 0; r < rows; r++ {
		for i, c := range cols {
			if i > 0 {
				b.WriteByte(',')
			}
			if r < len(c) {
				fmt.Fprintf(&b, "%g", c[r])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
