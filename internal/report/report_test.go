package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"alg", "saving"}, [][]string{
		{"vanilla", "1.00"},
		{"cmfl", "13.97"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "alg") || !strings.Contains(lines[0], "saving") {
		t.Fatalf("header malformed: %q", lines[0])
	}
	if !strings.Contains(out, "13.97") {
		t.Fatal("cell content missing")
	}
}

func TestPlotContainsMarkers(t *testing.T) {
	out := Plot("fig", 30, 8,
		Series{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
		Series{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}},
	)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("expected both series markers:\n%s", out)
	}
	if !strings.Contains(out, "fig") {
		t.Fatal("title missing")
	}
}

func TestPlotHandlesNaNAndEmpty(t *testing.T) {
	out := Plot("empty", 20, 6, Series{Name: "x", X: []float64{math.NaN()}, Y: []float64{math.NaN()}})
	if !strings.Contains(out, "no data") {
		t.Fatalf("expected no-data message:\n%s", out)
	}
	out = Plot("partial", 20, 6, Series{Name: "x", X: []float64{0, math.NaN(), 2}, Y: []float64{1, math.NaN(), 3}})
	if strings.Contains(out, "no data") {
		t.Fatal("partial data should still plot")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	out := Plot("const", 20, 6, Series{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}})
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series should still render:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"x", "y"}, []float64{1, 2, 3}, []float64{4, 5})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "x,y" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,4" || lines[3] != "3," {
		t.Fatalf("rows malformed: %v", lines)
	}
}
