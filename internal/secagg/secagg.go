// Package secagg simulates pairwise-mask secure aggregation (Bonawitz et
// al., the privacy mechanism the paper's Sec. II-A cites): each pair of
// participating clients shares a seed; client i adds +PRG(seed_ij) for every
// partner j > i and −PRG(seed_ij) for every j < i, so the server learns the
// *sum* of updates while every individual upload looks like noise.
//
// The simulation models the protocol state after key agreement (pair seeds
// are derived deterministically from a session seed) and omits the
// dropout-recovery secret sharing of the full protocol — participants are
// fixed for the round.
//
// CMFL composes cleanly: the relevance check runs client-side on the *raw*
// update before masking, and the skip/upload intention is the only metadata
// revealed. A two-phase round (intentions → server announces the upload set
// S → uploaders mask over S) keeps the masks cancelling under filtering;
// SimulateRound implements exactly that.
package secagg

import (
	"errors"
	"fmt"

	"cmfl/internal/xrand"
)

// ErrNotParticipant reports a mask request for a client outside the set.
var ErrNotParticipant = errors.New("secagg: client is not in the participant set")

// pairSeed derives the shared seed of the (unordered) client pair {a, b}
// for one round. In the real protocol this comes from a Diffie-Hellman
// exchange; the simulation derives it from the session seed so both ends
// agree without communication.
func pairSeed(session int64, round, a, b int) int64 {
	if a > b {
		a, b = b, a
	}
	s := xrand.Derive(session, fmt.Sprintf("secagg-pair-%d", round), a*1_000_003+b)
	return s.Int63()
}

// Mask adds client's pairwise masks for the given round over the announced
// participant set (which must include client). The input is not modified.
func Mask(session int64, round, client int, participants []int, update []float64) ([]float64, error) {
	in := false
	for _, p := range participants {
		if p == client {
			in = true
			break
		}
	}
	if !in {
		return nil, ErrNotParticipant
	}
	out := append([]float64(nil), update...)
	for _, p := range participants {
		if p == client {
			continue
		}
		prg := xrand.New(pairSeed(session, round, client, p))
		sign := 1.0
		if p < client {
			sign = -1
		}
		for j := range out {
			out[j] += sign * prg.Norm()
		}
	}
	return out, nil
}

// Aggregate sums masked updates from the full participant set; the pairwise
// masks cancel, yielding the raw sum. The caller divides by the count for
// the paper's averaging.
func Aggregate(masked [][]float64) ([]float64, error) {
	if len(masked) == 0 {
		return nil, errors.New("secagg: nothing to aggregate")
	}
	dim := len(masked[0])
	sum := make([]float64, dim)
	for i, m := range masked {
		if len(m) != dim {
			return nil, fmt.Errorf("secagg: update %d has %d coords, want %d", i, len(m), dim)
		}
		for j, v := range m {
			sum[j] += v
		}
	}
	return sum, nil
}

// UploadDecider is the client-side filter hook (implemented by the CMFL and
// Gaia filters through their Check method adapters).
type UploadDecider func(client int, update []float64) (bool, error)

// RoundResult is the outcome of one secure-aggregation round.
type RoundResult struct {
	// Average is the mean of the uploaded raw updates, recovered by the
	// server from masked data only.
	Average []float64
	// Uploaders is the announced participant set S (the round's only
	// revealed metadata besides message sizes).
	Uploaders []int
	// MaskedUpdates are what the server actually received (kept for tests
	// and privacy inspection).
	MaskedUpdates [][]float64
}

// SimulateRound runs the two-phase protocol over the given raw updates:
// every client applies decide (phase 1), the upload set is announced, and
// uploaders mask over that set (phase 2). A nil decide uploads everything.
func SimulateRound(session int64, round int, updates [][]float64, decide UploadDecider) (*RoundResult, error) {
	if len(updates) == 0 {
		return nil, errors.New("secagg: no clients")
	}
	var uploaders []int
	for c, u := range updates {
		upload := true
		if decide != nil {
			var err error
			upload, err = decide(c, u)
			if err != nil {
				return nil, fmt.Errorf("secagg: client %d decision: %w", c, err)
			}
		}
		if upload {
			uploaders = append(uploaders, c)
		}
	}
	res := &RoundResult{Uploaders: uploaders}
	if len(uploaders) == 0 {
		return res, nil
	}
	for _, c := range uploaders {
		m, err := Mask(session, round, c, uploaders, updates[c])
		if err != nil {
			return nil, err
		}
		res.MaskedUpdates = append(res.MaskedUpdates, m)
	}
	sum, err := Aggregate(res.MaskedUpdates)
	if err != nil {
		return nil, err
	}
	inv := 1.0 / float64(len(uploaders))
	for j := range sum {
		sum[j] *= inv
	}
	res.Average = sum
	return res, nil
}
