package secagg

import (
	"math"
	"testing"
	"testing/quick"

	"cmfl/internal/core"
	"cmfl/internal/xrand"
)

func randomUpdates(seed int64, clients, dim int) [][]float64 {
	rng := xrand.New(seed)
	out := make([][]float64, clients)
	for c := range out {
		out[c] = rng.NormVec(dim, 0, 1)
	}
	return out
}

func TestMasksCancelInAggregate(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		clients := 2 + rng.Intn(8)
		dim := 1 + rng.Intn(30)
		updates := randomUpdates(seed, clients, dim)
		participants := make([]int, clients)
		for i := range participants {
			participants[i] = i
		}
		masked := make([][]float64, clients)
		for c := range updates {
			m, err := Mask(seed, 3, c, participants, updates[c])
			if err != nil {
				return false
			}
			masked[c] = m
		}
		sum, err := Aggregate(masked)
		if err != nil {
			return false
		}
		for j := 0; j < dim; j++ {
			var want float64
			for c := range updates {
				want += updates[c][j]
			}
			if math.Abs(sum[j]-want) > 1e-6*math.Max(1, math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskedUpdateHidesRawUpdate(t *testing.T) {
	updates := randomUpdates(5, 6, 50)
	participants := []int{0, 1, 2, 3, 4, 5}
	m, err := Mask(5, 1, 0, participants, updates[0])
	if err != nil {
		t.Fatal(err)
	}
	// The mask's magnitude (sum of 5 unit Gaussians per coordinate) dwarfs
	// the raw update: correlation between masked and raw must be tiny.
	var dot, nm, nr float64
	for j := range m {
		dot += m[j] * updates[0][j]
		nm += m[j] * m[j]
		nr += updates[0][j] * updates[0][j]
	}
	corr := math.Abs(dot / math.Sqrt(nm*nr))
	if corr > 0.5 {
		t.Fatalf("masked update correlates %.2f with raw; privacy broken", corr)
	}
	// And the masked vector differs from raw everywhere.
	same := 0
	for j := range m {
		if m[j] == updates[0][j] {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d coordinates leaked unmasked", same)
	}
}

func TestMaskRequiresParticipation(t *testing.T) {
	if _, err := Mask(1, 1, 9, []int{0, 1}, []float64{1}); err != ErrNotParticipant {
		t.Fatalf("err = %v, want ErrNotParticipant", err)
	}
}

func TestSimulateRoundUploadsAll(t *testing.T) {
	updates := randomUpdates(7, 5, 20)
	res, err := SimulateRound(7, 2, updates, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Uploaders) != 5 {
		t.Fatalf("uploaders = %d, want 5", len(res.Uploaders))
	}
	for j := 0; j < 20; j++ {
		var want float64
		for c := range updates {
			want += updates[c][j] / 5
		}
		if math.Abs(res.Average[j]-want) > 1e-6 {
			t.Fatalf("average[%d] = %v, want %v", j, res.Average[j], want)
		}
	}
}

func TestSimulateRoundWithCMFLFilter(t *testing.T) {
	dim := 30
	rng := xrand.New(9)
	feedback := rng.NormVec(dim, 0, 1)
	aligned := append([]float64(nil), feedback...) // relevance 1
	opposed := make([]float64, dim)                // relevance 0
	for j := range opposed {
		opposed[j] = -feedback[j]
	}
	updates := [][]float64{aligned, opposed, aligned}
	filter := core.NewFilter(core.Constant(0.6))
	decide := func(client int, u []float64) (bool, error) {
		d, err := filter.Check(u, nil, feedback, 2)
		return d.Upload, err
	}
	res, err := SimulateRound(9, 2, updates, decide)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Uploaders) != 2 || res.Uploaders[0] != 0 || res.Uploaders[1] != 2 {
		t.Fatalf("uploaders = %v, want [0 2]", res.Uploaders)
	}
	// The recovered average must equal the aligned update (both uploads are
	// identical), with masks over the *filtered* set cancelling.
	for j := 0; j < dim; j++ {
		if math.Abs(res.Average[j]-aligned[j]) > 1e-6 {
			t.Fatalf("filtered secure average wrong at %d: %v vs %v", j, res.Average[j], aligned[j])
		}
	}
}

func TestSimulateRoundAllFiltered(t *testing.T) {
	updates := randomUpdates(11, 3, 10)
	decide := func(int, []float64) (bool, error) { return false, nil }
	res, err := SimulateRound(11, 1, updates, decide)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Uploaders) != 0 || res.Average != nil {
		t.Fatalf("all-filtered round should be empty: %+v", res)
	}
}

func TestPairSeedSymmetricAndRoundScoped(t *testing.T) {
	if pairSeed(1, 4, 2, 7) != pairSeed(1, 4, 7, 2) {
		t.Fatal("pair seed must be symmetric in the pair")
	}
	if pairSeed(1, 4, 2, 7) == pairSeed(1, 5, 2, 7) {
		t.Fatal("pair seed must differ across rounds")
	}
	if pairSeed(1, 4, 2, 7) == pairSeed(2, 4, 2, 7) {
		t.Fatal("pair seed must differ across sessions")
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := Aggregate(nil); err == nil {
		t.Fatal("expected error for empty aggregate")
	}
	if _, err := Aggregate([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("expected error for ragged updates")
	}
}
