package sim

import (
	"testing"
	"time"
)

// BenchmarkEventLoopSteadyState is the scheduler's inner loop in isolation:
// one pop and one re-push against a warm heap, the operation the simulation
// performs once per reply. The pinned baseline is 0 allocs/op — the heap's
// capacity is retained across rounds, so steady state never touches the
// allocator (the //cmfl:hotpath annotations make cmfl-vet prove it
// statically; this benchmark measures it dynamically).
func BenchmarkEventLoopSteadyState(b *testing.B) {
	var h eventHeap
	const inflight = 4096
	for i := 0; i < inflight; i++ {
		h.push(Event{At: time.Duration(i%97) * time.Millisecond, Kind: EventArrive, Client: i, Round: 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, ok := h.pop()
		if !ok {
			b.Fatal("heap drained")
		}
		ev.At += time.Duration(i%13) * time.Millisecond
		h.push(ev)
	}
}

// BenchmarkEventLoop100k is the 100k-client smoke at the event-loop level:
// schedule one full round's replies plus the deadline, then drain to the
// deadline — the exact push/drain pattern Run executes per round, minus
// training. After the first round grows the heap to population size, every
// subsequent round must run allocation-free inside the retained capacity.
func BenchmarkEventLoop100k(b *testing.B) {
	const clients = 100_000
	var h eventHeap
	// Warm the heap to population capacity; Run pays this growth once on the
	// first round, and it is the only allocation the scheduler ever makes.
	for c := 0; c <= clients; c++ {
		h.push(Event{At: time.Duration(c), Round: 0})
	}
	for h.len() > 0 {
		h.pop()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for round := 1; round <= b.N; round++ {
		base := time.Duration(round) * time.Second
		for c := 0; c < clients; c++ {
			h.push(Event{At: base + time.Duration((c*7919)%997)*time.Microsecond, Kind: EventArrive, Client: c, Round: round})
		}
		h.push(Event{At: base + time.Millisecond, Kind: EventDeadline, Round: round})
		drained := 0
		for {
			ev, ok := h.pop()
			if !ok {
				b.Fatalf("round %d: heap drained after %d events", round, drained)
			}
			drained++
			if ev.Kind == EventDeadline {
				break
			}
		}
		for h.len() > 0 {
			h.pop()
		}
	}
}

// TestEventLoopAllocFree enforces the 0 allocs/op contract directly: once
// the heap has grown to its working set, pop+push cycles allocate nothing.
func TestEventLoopAllocFree(t *testing.T) {
	var h eventHeap
	for i := 0; i < 1024; i++ {
		h.push(Event{At: time.Duration(i%31) * time.Millisecond, Client: i})
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		ev, ok := h.pop()
		if !ok {
			t.Fatal("heap drained")
		}
		ev.At += time.Duration(i%7) * time.Millisecond
		i++
		h.push(ev)
	})
	if allocs != 0 {
		t.Fatalf("steady-state pop+push allocates %.1f times per op, want 0", allocs)
	}
}
