package sim

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"cmfl/internal/xrand"
)

// Dist is a distribution over virtual durations. Every draw comes from the
// caller's seeded stream, so a Dist value itself is stateless and safe to
// share across clients — each client's sequence of draws is determined by
// its own stream, independent of scheduling.
type Dist interface {
	Name() string
	Sample(rng *xrand.Stream) time.Duration
}

// FixedDist always returns D. It draws nothing from the stream, so swapping
// a FixedDist for a random one changes the per-client draw count — keep
// that in mind when comparing runs across distribution families.
type FixedDist struct{ D time.Duration }

// Name implements Dist.
func (d FixedDist) Name() string { return fmt.Sprintf("fixed:%v", d.D) }

// Sample implements Dist.
func (d FixedDist) Sample(*xrand.Stream) time.Duration { return d.D }

// UniformDist draws uniformly from [Lo, Hi).
type UniformDist struct{ Lo, Hi time.Duration }

// Name implements Dist.
func (d UniformDist) Name() string { return fmt.Sprintf("uniform:%v,%v", d.Lo, d.Hi) }

// Sample implements Dist.
func (d UniformDist) Sample(rng *xrand.Stream) time.Duration {
	return d.Lo + time.Duration(rng.Float64()*float64(d.Hi-d.Lo))
}

// LogNormalDist draws log-normally with the given median and log-space
// sigma — the standard heavy-tailed model for edge-device round-trip
// times, where a small straggler population dominates the tail.
type LogNormalDist struct {
	Median time.Duration
	Sigma  float64
}

// Name implements Dist.
func (d LogNormalDist) Name() string { return fmt.Sprintf("lognormal:%v,%g", d.Median, d.Sigma) }

// Sample implements Dist.
func (d LogNormalDist) Sample(rng *xrand.Stream) time.Duration {
	return time.Duration(float64(d.Median) * math.Exp(d.Sigma*rng.Norm()))
}

// ExpDist draws exponentially with the given mean.
type ExpDist struct{ Mean time.Duration }

// Name implements Dist.
func (d ExpDist) Name() string { return fmt.Sprintf("exp:%v", d.Mean) }

// Sample implements Dist.
func (d ExpDist) Sample(rng *xrand.Stream) time.Duration {
	return time.Duration(-float64(d.Mean) * math.Log(1-rng.Float64()))
}

// ParseDist parses a distribution spec of the forms
//
//	fixed:<dur>            e.g. fixed:10ms
//	uniform:<lo>,<hi>      e.g. uniform:5ms,50ms
//	lognormal:<med>,<sig>  e.g. lognormal:20ms,0.5
//	exp:<mean>             e.g. exp:30ms
//
// Durations use Go syntax (time.ParseDuration). An empty spec or "none"
// yields fixed:0.
func ParseDist(spec string) (Dist, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return FixedDist{}, nil
	}
	kind, args, _ := strings.Cut(spec, ":")
	switch kind {
	case "fixed":
		d, err := time.ParseDuration(args)
		if err != nil {
			return nil, fmt.Errorf("sim: dist %q: %v", spec, err)
		}
		return FixedDist{D: d}, nil
	case "uniform":
		lo, hi, ok := strings.Cut(args, ",")
		if !ok {
			return nil, fmt.Errorf("sim: dist %q: want uniform:<lo>,<hi>", spec)
		}
		loD, err1 := time.ParseDuration(strings.TrimSpace(lo))
		hiD, err2 := time.ParseDuration(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil || hiD < loD {
			return nil, fmt.Errorf("sim: dist %q: want two durations with hi >= lo", spec)
		}
		return UniformDist{Lo: loD, Hi: hiD}, nil
	case "lognormal":
		med, sig, ok := strings.Cut(args, ",")
		if !ok {
			return nil, fmt.Errorf("sim: dist %q: want lognormal:<median>,<sigma>", spec)
		}
		medD, err1 := time.ParseDuration(strings.TrimSpace(med))
		sigF, err2 := strconv.ParseFloat(strings.TrimSpace(sig), 64)
		if err1 != nil || err2 != nil || sigF < 0 {
			return nil, fmt.Errorf("sim: dist %q: want a duration median and sigma >= 0", spec)
		}
		return LogNormalDist{Median: medD, Sigma: sigF}, nil
	case "exp":
		mean, err := time.ParseDuration(args)
		if err != nil {
			return nil, fmt.Errorf("sim: dist %q: %v", spec, err)
		}
		return ExpDist{Mean: mean}, nil
	}
	return nil, fmt.Errorf("sim: unknown dist kind %q (want fixed, uniform, lognormal or exp)", kind)
}
