package sim

import (
	"fmt"
	"math"
	"sync"
	"time"

	"cmfl/internal/core"
	"cmfl/internal/emu"
	"cmfl/internal/emu/shard"
	"cmfl/internal/fl"
	"cmfl/internal/nn"
	"cmfl/internal/telemetry"
	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// clientRound is one client's contribution to the current round, written by
// its shard worker and consumed by the driving goroutine.
type clientRound struct {
	delta     []float64
	loss      float64
	upload    bool
	relevance float64
	bytes     int64
	delay     time.Duration
	err       error
}

// shardWorker owns the scratch a worker goroutine reuses across rounds: one
// model replica (reset per client via SetParamVector inside the solver) and
// one codec encode buffer. Workers touch only per-client state — their own
// scratch, the client's streams, the client's results slot — so the result
// is independent of how clients are partitioned onto workers.
type shardWorker struct {
	net        *nn.Network
	encScratch []byte
}

// Run executes the simulated federated training in virtual time.
//
//cmfl:deterministic
func Run(cfg Config) (*Result, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	n := len(cfg.ClientData)
	server := cfg.Model()
	params := server.ParamVector()
	dim := len(params)

	var met *Families
	if cfg.Registry != nil {
		met = MetricFamilies(cfg.Registry)
	}

	// Per-client streams, fixed for the whole run. Training shuffles come
	// from fl.ClientStream in compat mode (bit parity with fl.Run) or the
	// compact splitmix64 derivation otherwise; timing draws (availability,
	// arrival, latency) always use a compact stream of their own, consumed
	// strictly in that order within each round.
	trainRng := make([]*xrand.Stream, n)
	timingRng := make([]*xrand.Stream, n)
	for c := 0; c < n; c++ {
		if cfg.CompatStreams {
			trainRng[c] = fl.ClientStream(cfg.Seed, c)
		} else {
			trainRng[c] = xrand.DeriveCompact(cfg.Seed, "sim-train", c)
		}
		timingRng[c] = xrand.DeriveCompact(cfg.Seed, "sim-timing", c)
	}

	workers := make([]*shardWorker, cfg.Shards)
	for w := range workers {
		workers[w] = &shardWorker{net: cfg.Model()}
	}

	res := &Result{
		SkipCounts:      make([]int, n),
		StragglerCounts: make([]int, n),
		FilterName:      cfg.Filter.Name(),
	}

	q := emu.NewQuorum(n)
	var heap eventHeap
	expected := make([]bool, n)
	results := make([]clientRound, n)

	feedback := make([]float64, dim) // all zeros: "no feedback yet"
	var signBuf []int8
	cumUploads := 0
	var cumBytes int64
	var encScratch []byte
	var decScratch []float64
	var clock time.Duration // virtual now; rounds advance it monotonically

	for t := 1; t <= cfg.Rounds; t++ {
		lr := cfg.LR.At(t)
		roundStart := clock

		var feedbackSigns []int8
		if !core.AllZero(feedback) {
			signBuf = core.SignsInto(signBuf[:0], feedback)
			feedbackSigns = signBuf
		}

		// Availability draws happen here, on the driving goroutine in
		// ascending client order, before any worker touches the round.
		for c := 0; c < n; c++ {
			expected[c] = cfg.Availability >= 1 || timingRng[c].Float64() < cfg.Availability
			results[c] = clientRound{}
		}

		// Fan the per-client work out to the shard workers: train, gate,
		// size the payload, draw the reply delay. Contiguous blocks keep
		// each worker's memory access local; any partition would produce
		// the same results.
		var wg sync.WaitGroup
		per := (n + cfg.Shards - 1) / cfg.Shards
		for w := 0; w < cfg.Shards; w++ {
			lo, hi := w*per, (w+1)*per
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w *shardWorker, lo, hi int) {
				defer wg.Done()
				w.round(&cfg, lo, hi, t, lr, params, feedback, feedbackSigns, expected, results, trainRng, timingRng)
			}(workers[w], lo, hi)
		}
		wg.Wait()
		for c := 0; c < n; c++ {
			if results[c].err != nil {
				return nil, fmt.Errorf("sim: round %d client %d: %w", t, c, results[c].err)
			}
		}

		// Schedule the round: every expected reply in ascending client
		// order, then the deadline. The push order is the (time, seq)
		// tie-break, so zero-latency replies drain in client order and a
		// reply landing exactly on the deadline beats the deadline event.
		q.BeginRound(t, expected)
		for c := 0; c < n; c++ {
			if expected[c] {
				heap.push(Event{At: roundStart + results[c].delay, Kind: EventArrive, Client: c, Round: t})
			}
		}
		if cfg.RoundDeadline > 0 {
			heap.push(Event{At: roundStart + cfg.RoundDeadline, Kind: EventDeadline, Round: t})
		}

		// Drain events in virtual-time order until the round closes: all
		// expected replies in, or the deadline fires. Events tagged with
		// earlier rounds are the straggler tail — replies drain as late
		// frames; outrun deadlines are inert.
		deadlineFired := false
		roundEnd := roundStart
		for !q.Complete() {
			ev, ok := heap.pop()
			if !ok {
				return nil, fmt.Errorf("sim: round %d: event heap drained with %d of %d replies outstanding", t, q.Accepted(), q.Expected())
			}
			if ev.Round != t {
				if ev.Kind == EventArrive {
					if v := q.Classify(ev.Client, ev.Round); v != emu.VerdictLate {
						return nil, fmt.Errorf("sim: round %d: stale reply from client %d classified %v, want late", t, ev.Client, v)
					}
					res.LateReplies++
					if met != nil {
						met.LateReplies.Inc()
					}
				}
				continue
			}
			switch ev.Kind {
			case EventDeadline:
				deadlineFired = true
				roundEnd = ev.At
			case EventArrive:
				switch v := q.Classify(ev.Client, ev.Round); v {
				case emu.VerdictAccept:
					roundEnd = ev.At
					if met != nil {
						met.ReplyLatency.Observe((ev.At - roundStart).Seconds())
						met.ReplyBytes.Observe(float64(results[ev.Client].bytes))
					}
				case emu.VerdictDuplicate, emu.VerdictLate, emu.VerdictFuture, emu.VerdictUnknown:
					return nil, fmt.Errorf("sim: round %d: current-round reply from client %d classified %v", t, ev.Client, v)
				}
			}
			if deadlineFired {
				break
			}
		}
		if accepted := q.Accepted(); accepted < cfg.MinQuorum {
			if deadlineFired {
				return nil, fmt.Errorf("sim: round %d: quorum not met at deadline %v: %d of %d replies (minimum %d)",
					t, cfg.RoundDeadline, accepted, q.Expected(), cfg.MinQuorum)
			}
			return nil, fmt.Errorf("sim: round %d: only %d replies possible (minimum %d)", t, accepted, cfg.MinQuorum)
		}

		// Aggregate the accepted uploads in ascending client order — the
		// same accumulation order as fl.Run, regardless of arrival order
		// or shard count. The scalar statistics go through exact
		// accumulators, so they too are independent of any regrouping.
		globalUpdate := make([]float64, dim)
		uploaded := 0
		var lossAcc, relAcc shard.Scalar
		var uploadBytes int64
		trained, relCount := 0, 0
		for c := 0; c < n; c++ {
			if !expected[c] {
				continue
			}
			r := &results[c]
			lossAcc.Add(r.loss)
			trained++
			if !math.IsNaN(r.relevance) {
				relAcc.Add(r.relevance)
				relCount++
			}
			if !q.Replied(c) {
				res.StragglerCounts[c]++
				continue
			}
			if !r.upload {
				res.SkipCounts[c]++
				uploadBytes += fl.SkipNotificationBytes
				continue
			}
			delta := r.delta
			if cfg.Compressor != nil {
				payload, err := cfg.Compressor.EncodeInto(encScratch, delta)
				if err != nil {
					return nil, fmt.Errorf("sim: round %d client %d encode: %w", t, c, err)
				}
				encScratch = payload
				decoded, err := cfg.Compressor.DecodeInto(decScratch, payload, dim)
				if err != nil {
					return nil, fmt.Errorf("sim: round %d client %d decode: %w", t, c, err)
				}
				decScratch = decoded
				delta = decoded
			}
			uploadBytes += r.bytes
			//cmfl:order-pinned ascending-client FedAvg fold is the cross-engine parity reference (fl.Run folds identically)
			tensor.Axpy(1, delta, globalUpdate)
			uploaded++
		}
		if uploaded > 0 {
			tensor.ScaleVec(1/float64(uploaded), globalUpdate)
			//cmfl:order-pinned rounds apply to the model strictly sequentially; t-order is the algorithm
			tensor.Axpy(1, globalUpdate, params)
			feedback = globalUpdate
		}
		cumUploads += uploaded
		cumBytes += uploadBytes

		if obs, ok := cfg.Filter.(fl.FilterFeedback); ok {
			obs.ObserveRound(t, uploaded, q.Expected())
		}

		clock = roundEnd
		stats := RoundStats{
			RoundEvent: telemetry.RoundEvent{
				Engine:         telemetry.EngineSim,
				Round:          t,
				Participants:   q.Expected(),
				Uploaded:       uploaded,
				Skipped:        q.Accepted() - uploaded,
				CumUploads:     cumUploads,
				CumUplinkBytes: cumBytes,
				Dropped:        q.StragglerCount(),
				Accuracy:       math.NaN(),
			},
			VirtualStart:  roundStart,
			VirtualEnd:    roundEnd,
			DeadlineFired: deadlineFired,
			TrainLoss:     math.NaN(),
			MeanRelevance: math.NaN(),
		}
		if trained > 0 {
			stats.TrainLoss = lossAcc.Round() / float64(trained)
		}
		if relCount > 0 {
			stats.MeanRelevance = relAcc.Round() / float64(relCount)
		}
		if met != nil {
			met.RoundDuration.Observe((roundEnd - roundStart).Seconds())
		}
		res.History = append(res.History, stats)
		if len(cfg.Observers) > 0 {
			for c := 0; c < n; c++ {
				if !q.Replied(c) {
					continue
				}
				telemetry.EmitClient(cfg.Observers, telemetry.ClientEvent{
					Engine:      telemetry.EngineSim,
					Round:       t,
					Client:      c,
					Uploaded:    results[c].upload,
					Relevance:   results[c].relevance,
					UplinkBytes: results[c].bytes,
				})
			}
			telemetry.EmitRound(cfg.Observers, stats.RoundEvent)
		}
	}

	res.FinalParams = append([]float64(nil), params...)
	res.VirtualDuration = clock
	return res, nil
}

// round processes the worker's client block for one round: local training,
// the upload gate, payload sizing and the reply-delay draw. Everything here
// is per-client pure computation — no event scheduling, no aggregation —
// which is what makes the run invariant to the shard count.
func (w *shardWorker) round(cfg *Config, lo, hi, t int, lr float64, params, feedback []float64, feedbackSigns []int8, expected []bool, results []clientRound, trainRng, timingRng []*xrand.Stream) {
	dim := len(params)
	for c := lo; c < hi; c++ {
		if !expected[c] {
			continue
		}
		r := &results[c]
		delta, loss, err := fl.LocalTrainProx(w.net, cfg.ClientData[c], params, lr, cfg.Epochs, cfg.Batch, 0, trainRng[c])
		if err != nil {
			r.err = err
			continue
		}
		dec, err := fl.CheckUpload(cfg.Filter, delta, params, feedback, feedbackSigns, t)
		if err != nil {
			r.err = err
			continue
		}
		rel := math.NaN()
		if len(feedbackSigns) > 0 {
			if v, err := core.SignAgreement(delta, feedbackSigns); err == nil {
				rel = v
			}
		}
		bytes := int64(fl.SkipNotificationBytes)
		if dec.Upload {
			if cfg.Compressor != nil {
				payload, err := cfg.Compressor.EncodeInto(w.encScratch, delta)
				if err != nil {
					r.err = err
					continue
				}
				w.encScratch = payload
				bytes = int64(len(payload))
			} else {
				bytes = int64(dim) * 8
			}
		}
		delay := cfg.Arrival.Sample(timingRng[c]) + cfg.Latency.Sample(timingRng[c])
		if cfg.BandwidthBytesPerSec > 0 {
			delay += time.Duration(float64(bytes) / cfg.BandwidthBytesPerSec * float64(time.Second))
		}
		if delay < 0 {
			delay = 0
		}
		r.delta, r.loss, r.upload, r.relevance, r.bytes, r.delay = delta, loss, dec.Upload, rel, bytes, delay
	}
}
