package sim

import "time"

// EventKind distinguishes the two occurrences the virtual clock schedules.
type EventKind uint8

const (
	// EventArrive is a client's uplink reply (update or skip notification)
	// reaching the server.
	EventArrive EventKind = iota
	// EventDeadline is a round's quorum deadline firing.
	EventDeadline
)

// Event is one scheduled occurrence in virtual time. At is the virtual
// timestamp (duration since simulation start); Seq is the push sequence
// number that breaks ties between events scheduled for the same instant, so
// equal-timestamp events always drain in the order they were scheduled —
// the property that makes the whole engine's float accumulation order a
// pure function of the seed.
type Event struct {
	At     time.Duration
	Seq    uint64
	Kind   EventKind
	Client int
	Round  int
}

// eventLess orders the heap by (At, Seq): earliest first, FIFO on ties.
func eventLess(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.Seq < b.Seq
}

// eventHeap is a binary min-heap of Events ordered by eventLess. It is the
// simulation's entire scheduler state: one flat slice, no container/heap
// interface boxing, no per-event allocation. Capacity grows to the maximum
// number of in-flight events (≤ clients + rounds) and is reused for the
// rest of the run, so the steady-state push/pop path never allocates.
type eventHeap struct {
	events []Event
	seq    uint64
}

// push schedules an event, stamping its tie-break sequence number.
//
//cmfl:hotpath
func (h *eventHeap) push(e Event) {
	e.Seq = h.seq
	h.seq++
	//cmfl:lint-ignore hotpathalloc amortized grow-only resize; steady state runs inside retained capacity
	h.events = append(h.events, e)
	i := len(h.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h.events[i], h.events[parent]) {
			break
		}
		h.events[i], h.events[parent] = h.events[parent], h.events[i]
		i = parent
	}
}

// pop removes and returns the earliest event; ok is false on an empty heap.
//
//cmfl:hotpath
func (h *eventHeap) pop() (e Event, ok bool) {
	n := len(h.events)
	if n == 0 {
		return Event{}, false
	}
	top := h.events[0]
	h.events[0] = h.events[n-1]
	h.events = h.events[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && eventLess(h.events[l], h.events[smallest]) {
			smallest = l
		}
		if r < n && eventLess(h.events[r], h.events[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.events[i], h.events[smallest] = h.events[smallest], h.events[i]
		i = smallest
	}
	return top, true
}

// len reports the number of scheduled events.
func (h *eventHeap) len() int { return len(h.events) }
