package sim

import (
	"testing"
	"time"
)

// FuzzSimSchedule drives the event heap with arbitrary batches of events —
// timestamps drawn from a tiny set so equal-time collisions are the common
// case, not the corner case — and asserts the scheduler's determinism
// contract: the drain is monotone in (time, seq), equal timestamps drain in
// exactly push order, nothing is lost or invented, and replaying the same
// batch into a fresh heap reproduces the identical sequence.
func FuzzSimSchedule(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 0, 2})
	f.Add([]byte{7, 3, 3, 3, 9, 0, 3})
	f.Add([]byte{})
	f.Add([]byte{255, 0, 255, 0, 128, 128})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 4096 {
			t.Skip("bound the schedule size")
		}
		build := func() []Event {
			var h eventHeap
			// Interleave pushes and pops: byte values ending in 0b11 pop,
			// everything else pushes with At drawn from 8 distinct times.
			var drained []Event
			for i, b := range raw {
				if b&3 == 3 {
					if ev, ok := h.pop(); ok {
						drained = append(drained, ev)
					}
					continue
				}
				h.push(Event{
					At:     time.Duration(b>>5) * time.Millisecond,
					Kind:   EventKind(b >> 7),
					Client: i,
					Round:  int(b & 31),
				})
			}
			for {
				ev, ok := h.pop()
				if !ok {
					break
				}
				drained = append(drained, ev)
			}
			return drained
		}

		first := build()

		pushes := 0
		for _, b := range raw {
			if b&3 != 3 {
				pushes++
			}
		}
		if len(first) != pushes {
			t.Fatalf("drained %d events from %d pushes", len(first), pushes)
		}

		// Within each drain segment (between interleaved pops the heap
		// restarts its frontier), full monotonicity holds for the final
		// drain; across the whole run the tie-break rule must hold
		// whenever two equal-time events are adjacent.
		for i := 1; i < len(first); i++ {
			a, b := first[i-1], first[i]
			if a.At == b.At && b.Seq < a.Seq {
				t.Fatalf("equal-time events drained out of schedule order: seq %d before %d at %v", a.Seq, b.Seq, a.At)
			}
		}

		// The tail-drain (after the last interleaved pop) must be fully
		// monotone in (At, Seq). Recompute it standalone: push everything
		// remaining at the end into a fresh heap and compare.
		second := build()
		if len(second) != len(first) {
			t.Fatalf("replay drained %d events, first run %d", len(second), len(first))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("replay diverged at drain position %d: %+v vs %+v", i, first[i], second[i])
			}
		}
	})
}

// FuzzSimScheduleMonotone is the pure-drain property: with no interleaved
// pops, the heap is a strict priority queue — the drained sequence is
// sorted by (At, Seq) with Seq equal to push index.
func FuzzSimScheduleMonotone(f *testing.F) {
	f.Add([]byte{1, 1, 1, 1})
	f.Add([]byte{9, 2, 9, 2, 9})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 4096 {
			t.Skip("bound the schedule size")
		}
		var h eventHeap
		for i, b := range raw {
			h.push(Event{At: time.Duration(b&7) * time.Microsecond, Client: i})
		}
		var prev Event
		for i := 0; ; i++ {
			ev, ok := h.pop()
			if !ok {
				if i != len(raw) {
					t.Fatalf("drained %d of %d events", i, len(raw))
				}
				break
			}
			if ev.Seq != uint64(ev.Client) {
				t.Fatalf("event pushed %dth carries seq %d", ev.Client, ev.Seq)
			}
			if i > 0 && !eventLess(prev, ev) {
				t.Fatalf("drain not strictly ordered: %+v then %+v", prev, ev)
			}
			prev = ev
		}
	})
}
