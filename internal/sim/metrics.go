package sim

import "cmfl/internal/telemetry"

// Metric family names. Declared as constants so the metricschema analyzer
// can pin them; each family has exactly one registration site (below).
const (
	metricReplyLatency  = "cmfl_sim_reply_latency_seconds"
	metricRoundDuration = "cmfl_sim_round_duration_seconds"
	metricUplinkBytes   = "cmfl_sim_reply_bytes"
	metricLateReplies   = "cmfl_sim_late_replies_total"
)

// Families bundles the simulation's registry handles. The per-round and
// per-reply observations go through fixed-bucket histograms so the soak
// harness can read p50/p99/p999 straight off the registry (Histogram.
// Quantile) without the engine retaining per-reply samples.
type Families struct {
	ReplyLatency  *telemetry.Histogram
	RoundDuration *telemetry.Histogram
	ReplyBytes    *telemetry.Histogram
	LateReplies   *telemetry.Counter
}

// byteBuckets is an exponential grid from 16 B (the skip notification) to
// 16 MiB, covering raw float64 updates and every codec in between.
func byteBuckets() []float64 {
	b := make([]float64, 21)
	v := 16.0
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// MetricFamilies registers (or resolves) the sim metric families in reg.
// Run calls it to record; readers (cmd/cmfl-soak) call it with the same
// registry to pull quantiles off the identical handles. This is the single
// registration site for every cmfl_sim_* family.
func MetricFamilies(reg *telemetry.Registry) *Families {
	label := `{engine="` + telemetry.EngineSim + `"}`
	return &Families{
		ReplyLatency:  reg.Histogram(metricReplyLatency+label, "Virtual delay from round start to a reply's arrival at the server.", telemetry.LatencyBuckets()),
		RoundDuration: reg.Histogram(metricRoundDuration+label, "Virtual duration of a round, start to aggregation.", telemetry.LatencyBuckets()),
		ReplyBytes:    reg.Histogram(metricUplinkBytes+label, "Uplink payload size of one accepted reply (update or skip notification).", byteBuckets()),
		LateReplies:   reg.Counter(metricLateReplies+label, "Replies that arrived after their round's deadline and were drained, never aggregated."),
	}
}
