// Package sim is a deterministic discrete-event simulation of CMFL training
// at population scales the TCP emulation cannot reach. Where internal/emu
// gives every client a real socket and a goroutine, sim multiplexes many
// simulated clients onto a few worker shards and replaces wall-clock time
// with a virtual clock: client replies and round deadlines are events in a
// monotonically drained heap, ordered by (virtual time, schedule sequence).
//
// The engine reuses the repository's single sources of truth rather than
// re-implementing them: local optimisation is fl.LocalTrainProx, the CMFL
// relevance gate is fl.CheckUpload, codec byte accounting goes through the
// same fl.UpdateCodec interface, and straggler/duplicate/late semantics are
// the exported emu.Quorum state machine — so the simulation cannot drift
// from the engines it models. With zero latency, full availability and no
// deadline, Run is bit-identical to fl.Run (asserted by TestFLParity).
//
// Everything is a pure function of Config (including the seed): reruns and
// different shard counts produce bit-identical final parameters, round
// histories and registry histograms. Shard workers perform only per-client
// computation on per-client streams; all event scheduling and float
// aggregation happen on the driving goroutine in ascending client order.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"cmfl/internal/core"
	"cmfl/internal/dataset"
	"cmfl/internal/fl"
	"cmfl/internal/nn"
	"cmfl/internal/telemetry"
)

// Config describes one simulated federated run.
type Config struct {
	// Model builds a fresh network with the experiment's architecture; the
	// factory must be deterministic (seed its own initialisation stream).
	// Called once for the server and once per worker shard.
	Model func() *nn.Network
	// ClientData holds one private shard per simulated client.
	ClientData []*dataset.Set

	// Epochs, Batch and LR parameterise the local solver exactly as in
	// fl.Config.
	Epochs int
	Batch  int
	LR     core.Schedule

	// Filter gates uploads (nil = fl.Vanilla: upload everything).
	Filter fl.UploadFilter
	// Compressor lossily encodes uploads; nil uploads raw float64 vectors.
	// Byte accounting and lossy aggregation match fl.Run; client-side
	// error feedback (EF-SGD) is not simulated.
	Compressor fl.UpdateCodec

	// Rounds is the number of synchronous rounds.
	Rounds int
	// Seed drives every random draw: training shuffles, timing
	// distributions and availability, all via per-client derived streams.
	Seed int64

	// Shards is the number of worker goroutines clients are multiplexed
	// onto (default: GOMAXPROCS). Results are bit-identical across shard
	// counts; Shards only trades wall-clock speed for memory.
	Shards int

	// Arrival is the per-reply local delay before a client's reply leaves
	// the device: compute time plus queuing (nil = 0).
	Arrival Dist
	// Latency is the per-reply network delay (nil = 0).
	Latency Dist
	// BandwidthBytesPerSec serialises the reply payload onto the uplink:
	// payload/bandwidth is added to the reply delay. Zero = infinite.
	BandwidthBytesPerSec float64
	// Availability is the per-round probability that the round's broadcast
	// reaches a client; unavailable clients neither train nor reply and
	// are not expected by the quorum. Zero means fully available (1.0).
	Availability float64

	// RoundDeadline bounds a round in virtual time: replies arriving later
	// are excluded (stragglers) and drain as late frames in subsequent
	// rounds. Zero waits for every expected reply. A reply landing exactly
	// at the deadline instant is accepted: arrivals are scheduled before
	// the deadline event, so the (time, seq) order resolves the tie in the
	// reply's favour.
	RoundDeadline time.Duration
	// MinQuorum is the minimum number of replies a round must aggregate;
	// fewer at the deadline aborts the run (default 1).
	MinQuorum int

	// CompatStreams derives training shuffles from fl.ClientStream — the
	// in-process engine's exact per-client streams — making zero-latency
	// runs bit-identical to fl.Run at the cost of ~5 KB of generator state
	// per client. Off (the default), training streams use the compact
	// splitmix64 derivation, which is what makes million-client
	// populations affordable.
	CompatStreams bool

	// Registry receives the sim histogram families (reply latency, round
	// duration, reply bytes) when non-nil.
	Registry *telemetry.Registry
	// Observers receive one telemetry.ClientEvent per accepted reply (in
	// client order) followed by one telemetry.RoundEvent per round.
	Observers []telemetry.Observer
}

// RoundStats records one simulated round: the engine-shared communication
// core plus the virtual-time quantities only a simulation can measure.
type RoundStats struct {
	telemetry.RoundEvent

	// VirtualStart / VirtualEnd bound the round in virtual time; the next
	// round starts where this one ended.
	VirtualStart time.Duration
	VirtualEnd   time.Duration
	// DeadlineFired reports whether the round closed at its deadline
	// (true) or because every expected reply arrived (false).
	DeadlineFired bool

	// TrainLoss is the mean local loss over clients that trained.
	TrainLoss float64
	// MeanRelevance is the client-mean CMFL Eq. 9 relevance (NaN while no
	// feedback exists).
	MeanRelevance float64
}

// Result is the outcome of a simulated run.
type Result struct {
	History []RoundStats
	// FinalParams is the global parameter vector after the last round.
	FinalParams []float64
	// SkipCounts is the number of gate-filtered uploads per client.
	SkipCounts []int
	// StragglerCounts is the number of rounds each client was expected but
	// cut off by the deadline.
	StragglerCounts []int
	// LateReplies counts straggler replies that arrived after their
	// round's deadline and were drained, never aggregated.
	LateReplies int
	// VirtualDuration is the total virtual time the run spanned.
	VirtualDuration time.Duration
	// FilterName echoes the upload filter used.
	FilterName string
}

func validate(cfg *Config) error {
	switch {
	case cfg.Model == nil:
		return errors.New("sim: Config.Model is required")
	case len(cfg.ClientData) == 0:
		return errors.New("sim: at least one client shard is required")
	case cfg.Epochs <= 0:
		return errors.New("sim: Epochs must be positive")
	case cfg.Batch <= 0:
		return errors.New("sim: Batch must be positive")
	case cfg.LR == nil:
		return errors.New("sim: LR schedule is required")
	case cfg.Rounds <= 0:
		return errors.New("sim: Rounds must be positive")
	case cfg.RoundDeadline < 0:
		return errors.New("sim: RoundDeadline must be non-negative")
	case cfg.BandwidthBytesPerSec < 0:
		return errors.New("sim: BandwidthBytesPerSec must be non-negative")
	case cfg.Availability < 0 || cfg.Availability > 1:
		return errors.New("sim: Availability must be in [0, 1]")
	}
	for i, d := range cfg.ClientData {
		if d == nil || d.Len() == 0 {
			return fmt.Errorf("sim: client %d has no data", i)
		}
	}
	if cfg.Filter == nil {
		cfg.Filter = fl.Vanilla{}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Shards > len(cfg.ClientData) {
		cfg.Shards = len(cfg.ClientData)
	}
	if cfg.Arrival == nil {
		cfg.Arrival = FixedDist{}
	}
	if cfg.Latency == nil {
		cfg.Latency = FixedDist{}
	}
	if cfg.Availability <= 0 { // negatives were rejected above; zero means unset
		cfg.Availability = 1
	}
	if cfg.MinQuorum <= 0 {
		cfg.MinQuorum = 1
	}
	return nil
}
