package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"cmfl/internal/compress"
	"cmfl/internal/core"
	"cmfl/internal/fl"
	"cmfl/internal/telemetry"
)

// simConfig builds a small but fully featured simulation: heavy-tailed
// latency, imperfect availability, a deadline that cuts the tail, and the
// CMFL gate — every code path the determinism properties must cover.
func simConfig(t *testing.T, clients, shards int) Config {
	t.Helper()
	wl, err := SyntheticWorkload(clients, 8, 2, 6, 97)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Model:         wl.Model,
		ClientData:    wl.Shards,
		Epochs:        1,
		Batch:         6,
		LR:            core.Constant(0.1),
		Filter:        core.NewFilter(core.Constant(0.4)),
		Rounds:        4,
		Seed:          97,
		Shards:        shards,
		Arrival:       ExpDist{Mean: 2 * time.Millisecond},
		Latency:       LogNormalDist{Median: 10 * time.Millisecond, Sigma: 0.6},
		Availability:  0.9,
		RoundDeadline: 40 * time.Millisecond,
		MinQuorum:     1,
	}
}

// fingerprint reduces a Result plus its registry to a deterministic string:
// bit-exact params, the full round history (NaNs render stably through %v),
// and the complete Prometheus exposition of every sim histogram.
func fingerprint(t *testing.T, res *Result, reg *telemetry.Registry) string {
	t.Helper()
	var sb strings.Builder
	for _, p := range res.FinalParams {
		fmt.Fprintf(&sb, "%x;", math.Float64bits(p))
	}
	fmt.Fprintf(&sb, "\n%v\n%v\n%v\nlate=%d dur=%v\n",
		res.History, res.SkipCounts, res.StragglerCounts, res.LateReplies, res.VirtualDuration)
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestDeterminism pins the tentpole property: the same seed produces
// bit-identical final parameters, histories and registry histograms across
// reruns AND across shard counts.
func TestDeterminism(t *testing.T) {
	var want string
	for i, shards := range []int{1, 1, 3, 8, 64} {
		cfg := simConfig(t, 96, shards)
		cfg.Registry = telemetry.NewRegistry()
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got := fingerprint(t, res, cfg.Registry)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("shards=%d: result diverged from the shards=1 baseline", shards)
		}
	}
}

// TestDeterministicEventOrder asserts the event order itself — observed as
// the exact sequence of client telemetry events — is identical across
// reruns and shard counts, not just the aggregate outcome.
func TestDeterministicEventOrder(t *testing.T) {
	trace := func(shards int) string {
		cfg := simConfig(t, 64, shards)
		var sb strings.Builder
		cfg.Observers = []telemetry.Observer{telemetry.Funcs{
			Client: func(e telemetry.ClientEvent) {
				fmt.Fprintf(&sb, "c r%d c%d u%v b%d;", e.Round, e.Client, e.Uploaded, e.UplinkBytes)
			},
			Round: func(e telemetry.RoundEvent) {
				fmt.Fprintf(&sb, "R r%d p%d u%d d%d;", e.Round, e.Participants, e.Uploaded, e.Dropped)
			},
		}}
		if _, err := Run(cfg); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return sb.String()
	}
	want := trace(1)
	for _, shards := range []int{1, 4, 16} {
		if got := trace(shards); got != want {
			t.Fatalf("shards=%d: event order diverged", shards)
		}
	}
}

// TestFLParity is the cross-engine anchor: with zero latency, full
// availability, no deadline and compat streams, the simulation must
// reproduce fl.Run bit for bit — final parameters, upload counts and byte
// accounting — both raw and through a lossy codec.
func TestFLParity(t *testing.T) {
	for _, codecName := range []string{"none", "top6+quantize8"} {
		t.Run(codecName, func(t *testing.T) {
			codec, err := compress.ParseName(codecName)
			if err != nil {
				t.Fatal(err)
			}
			wl, werr := SyntheticWorkload(16, 8, 2, 6, 4242)
			if werr != nil {
				t.Fatal(werr)
			}

			flCfg := fl.Config{
				Model:      wl.Model,
				ClientData: wl.Shards,
				Epochs:     2,
				Batch:      4,
				LR:         core.Constant(0.12),
				Filter:     core.NewFilter(core.Constant(0.4)),
				Rounds:     5,
				Seed:       4242,
			}
			simCfg := Config{
				Model:         wl.Model,
				ClientData:    wl.Shards,
				Epochs:        2,
				Batch:         4,
				LR:            core.Constant(0.12),
				Filter:        core.NewFilter(core.Constant(0.4)),
				Rounds:        5,
				Seed:          4242,
				Shards:        3,
				CompatStreams: true,
			}
			if codec != nil {
				flCfg.Compressor = codec
				simCfg.Compressor = codec
			}

			flRes, err := fl.Run(flCfg)
			if err != nil {
				t.Fatal(err)
			}
			simRes, err := Run(simCfg)
			if err != nil {
				t.Fatal(err)
			}

			if len(flRes.FinalParams) != len(simRes.FinalParams) {
				t.Fatalf("param dims differ: fl %d, sim %d", len(flRes.FinalParams), len(simRes.FinalParams))
			}
			for j := range flRes.FinalParams {
				if flRes.FinalParams[j] != simRes.FinalParams[j] {
					t.Fatalf("param %d: fl %v != sim %v (bit parity broken)", j, flRes.FinalParams[j], simRes.FinalParams[j])
				}
			}
			for r := range flRes.History {
				fe, se := flRes.History[r].RoundEvent, simRes.History[r].RoundEvent
				if fe.Uploaded != se.Uploaded || fe.Skipped != se.Skipped ||
					fe.CumUploads != se.CumUploads || fe.CumUplinkBytes != se.CumUplinkBytes {
					t.Fatalf("round %d accounting diverged:\n  fl:  %+v\n  sim: %+v", r+1, fe, se)
				}
			}
			for c, n := range flRes.SkipCounts {
				if simRes.SkipCounts[c] != n {
					t.Fatalf("client %d skips: fl %d, sim %d", c, n, simRes.SkipCounts[c])
				}
			}
		})
	}
}

// TestDeadlineSemantics pins the virtual-time deadline contract:
// deadline-closed rounds end exactly RoundDeadline after they start, and a
// reply landing exactly at the deadline instant is accepted (arrivals are
// scheduled before the deadline event, so the seq tie-break favours them).
func TestDeadlineSemantics(t *testing.T) {
	t.Run("fires exactly at RoundDeadline", func(t *testing.T) {
		cfg := simConfig(t, 64, 4)
		cfg.Rounds = 6
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fired := 0
		for _, rs := range res.History {
			if !rs.DeadlineFired {
				continue
			}
			fired++
			if got := rs.VirtualEnd - rs.VirtualStart; got != cfg.RoundDeadline {
				t.Fatalf("round %d closed %v after start, want exactly %v", rs.Round, got, cfg.RoundDeadline)
			}
			if rs.Dropped == 0 {
				t.Fatalf("round %d fired its deadline but dropped no stragglers", rs.Round)
			}
		}
		if fired == 0 {
			t.Fatal("no round hit its deadline; the scenario no longer exercises the straggler path")
		}
		if res.LateReplies == 0 {
			t.Fatal("straggler replies never drained as late frames")
		}
		total := 0
		for _, n := range res.StragglerCounts {
			total += n
		}
		if total == 0 {
			t.Fatal("deadline fired but per-client straggler counts are all zero")
		}
	})

	t.Run("reply exactly at the deadline is accepted", func(t *testing.T) {
		cfg := simConfig(t, 8, 2)
		cfg.Arrival = FixedDist{}
		cfg.Latency = FixedDist{D: 25 * time.Millisecond}
		cfg.Availability = 1
		cfg.RoundDeadline = 25 * time.Millisecond
		cfg.Rounds = 2
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, rs := range res.History {
			if rs.DeadlineFired {
				t.Fatalf("round %d: all replies land exactly at the deadline and must beat it, but the deadline fired", rs.Round)
			}
			if rs.Dropped != 0 || rs.Participants != 8 {
				t.Fatalf("round %d: dropped=%d participants=%d, want 0/8", rs.Round, rs.Dropped, rs.Participants)
			}
			if got := rs.VirtualEnd - rs.VirtualStart; got != cfg.RoundDeadline {
				t.Fatalf("round %d duration %v, want %v (last reply at the deadline instant)", rs.Round, got, cfg.RoundDeadline)
			}
		}
	})
}

// TestQuorumAbort pins the sim-side quorum failure modes and their message
// stability across reruns.
func TestQuorumAbort(t *testing.T) {
	run := func() error {
		cfg := simConfig(t, 8, 2)
		cfg.Arrival = FixedDist{}
		cfg.Latency = FixedDist{D: time.Second} // everyone misses the deadline
		cfg.Availability = 1
		cfg.RoundDeadline = 10 * time.Millisecond
		_, err := Run(cfg)
		return err
	}
	first, second := run(), run()
	if first == nil || second == nil {
		t.Fatalf("all-straggler round must abort, got %v / %v", first, second)
	}
	want := "sim: round 1: quorum not met at deadline 10ms: 0 of 8 replies (minimum 1)"
	if first.Error() != want {
		t.Fatalf("abort error = %q, want %q", first, want)
	}
	if first.Error() != second.Error() {
		t.Fatalf("abort message unstable: %q vs %q", first, second)
	}

	// Too few available clients without a deadline: the "only N replies
	// possible" variant.
	cfg := simConfig(t, 8, 2)
	cfg.Arrival = FixedDist{}
	cfg.Latency = FixedDist{}
	cfg.Availability = 0.01
	cfg.RoundDeadline = 0
	cfg.MinQuorum = 8
	_, err := Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "replies possible (minimum 8)") {
		t.Fatalf("under-quorum run must fail with the replies-possible error, got: %v", err)
	}
}

// TestVirtualClockHeap unit-tests the scheduler core: min ordering, FIFO
// tie-breaking on equal timestamps, and monotone drain.
func TestVirtualClockHeap(t *testing.T) {
	var h eventHeap
	times := []time.Duration{30, 10, 20, 10, 30, 10, 0}
	for i, at := range times {
		h.push(Event{At: at, Client: i})
	}
	if h.len() != len(times) {
		t.Fatalf("len = %d, want %d", h.len(), len(times))
	}
	var prev Event
	var order []int
	for first := true; ; first = false {
		ev, ok := h.pop()
		if !ok {
			break
		}
		if !first {
			if ev.At < prev.At {
				t.Fatalf("drain went backwards in time: %v after %v", ev.At, prev.At)
			}
			if ev.At == prev.At && ev.Seq < prev.Seq {
				t.Fatalf("tie at %v drained out of schedule order: seq %d after %d", ev.At, ev.Seq, prev.Seq)
			}
		}
		prev = ev
		order = append(order, ev.Client)
	}
	// Clients 1, 3, 5 all scheduled for t=10: FIFO means push order.
	want := []int{6, 1, 3, 5, 2, 0, 4}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("drain order = %v, want %v", order, want)
	}
	if _, ok := h.pop(); ok {
		t.Fatal("pop from empty heap reported ok")
	}
}

// TestParseDist covers the CLI distribution grammar.
func TestParseDist(t *testing.T) {
	good := map[string]string{
		"fixed:10ms":         "fixed:10ms",
		"uniform:5ms,50ms":   "uniform:5ms,50ms",
		"lognormal:20ms,0.5": "lognormal:20ms,0.5",
		"exp:30ms":           "exp:30ms",
		"":                   "fixed:0s",
		"none":               "fixed:0s",
	}
	for spec, name := range good {
		d, err := ParseDist(spec)
		if err != nil {
			t.Fatalf("ParseDist(%q): %v", spec, err)
		}
		if d.Name() != name {
			t.Fatalf("ParseDist(%q).Name() = %q, want %q", spec, d.Name(), name)
		}
	}
	for _, spec := range []string{"bogus:1ms", "uniform:5ms", "uniform:50ms,5ms", "lognormal:10ms", "fixed:zzz", "lognormal:10ms,-1"} {
		if _, err := ParseDist(spec); err == nil {
			t.Fatalf("ParseDist(%q) accepted a malformed spec", spec)
		}
	}
}

// TestRegistryPercentiles closes the loop the soak harness depends on:
// latency and byte distributions land in the registry and come back out as
// sane quantiles.
func TestRegistryPercentiles(t *testing.T) {
	cfg := simConfig(t, 96, 4)
	cfg.Registry = telemetry.NewRegistry()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	fam := MetricFamilies(cfg.Registry)
	if fam.ReplyLatency.Count() == 0 {
		t.Fatal("no reply latencies observed")
	}
	p50, p99 := fam.ReplyLatency.Quantile(0.5), fam.ReplyLatency.Quantile(0.99)
	if math.IsNaN(p50) || math.IsNaN(p99) || p50 <= 0 || p99 < p50 {
		t.Fatalf("latency quantiles p50=%v p99=%v are not sane", p50, p99)
	}
	if fam.ReplyBytes.Count() != fam.ReplyLatency.Count() {
		t.Fatalf("reply bytes count %d != reply latency count %d", fam.ReplyBytes.Count(), fam.ReplyLatency.Count())
	}
}
