package sim

import (
	"fmt"

	"cmfl/internal/dataset"
	"cmfl/internal/nn"
	"cmfl/internal/tensor"
	"cmfl/internal/xrand"
)

// Workload is a ready-to-simulate population: a model factory and one data
// shard per client.
type Workload struct {
	Model  func() *nn.Network
	Shards []*dataset.Set
}

// SyntheticWorkload builds a gaussian-blob classification population sized
// for very large client counts: `classes` well-separated class centers, and
// per client a private shard of `samples` points drawn around those centers
// with a per-client mean offset — the same structural non-IIDness the
// dataset package gives the paper workloads (each client sees a biased,
// partially tangential view of the collaborative optimum), at a per-client
// memory cost of samples×features float64s.
//
// The model is a logistic classifier (features → classes), initialised from
// a stream derived from seed alone, so every Model() call — server and
// every worker shard — starts from identical parameters. All generation
// randomness derives from (seed, purpose, client) via compact streams;
// building a million-client workload allocates no 5 KB generator tables.
func SyntheticWorkload(clients, features, classes, samples int, seed int64) (Workload, error) {
	if clients <= 0 || features <= 0 || classes <= 1 || samples <= 0 {
		return Workload{}, fmt.Errorf("sim: workload wants clients>0, features>0, classes>1, samples>0; got %d/%d/%d/%d", clients, features, classes, samples)
	}
	// Class centers on a scaled simplex-ish layout: one coordinate block
	// per class pushed positive, drawn once for the whole population.
	crng := xrand.DeriveCompact(seed, "sim-centers", 0)
	centers := make([][]float64, classes)
	for k := range centers {
		centers[k] = crng.NormVec(features, 0, 0.3)
		for f := k % features; f < features; f += classes {
			centers[k][f] += 2.0
		}
	}

	shards := make([]*dataset.Set, clients)
	for c := 0; c < clients; c++ {
		rng := xrand.DeriveCompact(seed, "sim-data", c)
		// Per-client mean offset: the non-IID bias shared by every sample
		// on this client.
		offset := rng.NormVec(features, 0, 0.5)
		set := &dataset.Set{X: tensor.New(samples, features), Y: make([]int, samples)}
		primary := c % classes
		for s := 0; s < samples; s++ {
			label := primary
			if rng.Float64() >= 0.7 {
				label = rng.Intn(classes)
			}
			row := set.X.Data[s*features : (s+1)*features]
			for f := 0; f < features; f++ {
				row[f] = centers[label][f] + offset[f] + 0.8*rng.Norm()
			}
			set.Y[s] = label
		}
		shards[c] = set
	}

	model := func() *nn.Network {
		return nn.NewLogistic(features, classes, xrand.Derive(seed, "sim-init", 0))
	}
	return Workload{Model: model, Shards: shards}, nil
}
