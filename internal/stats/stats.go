// Package stats implements the paper's measurement quantities: empirical
// CDFs (Figs. 1, 3, 6), the Normalized Model Divergence of Eq. 7, and the
// communication-saving metric of Sec. V (Φ_vanilla / Φ_alg at a target
// accuracy).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples. NaN values are dropped; the
// input is not modified.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, 0, len(samples))
	for _, v := range samples {
		if !math.IsNaN(v) {
			s = append(s, v)
		}
	}
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of retained samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the p-quantile for p in [0, 1].
func (c *CDF) Quantile(p float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(p * float64(len(c.sorted)))
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Max returns the largest sample.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Min returns the smallest sample.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Points samples n evenly spaced (x, P(X<=x)) pairs across the data range,
// suitable for plotting.
func (c *CDF) Points(n int) (xs, ps []float64) {
	if len(c.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	lo, hi := c.Min(), c.Max()
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		x := lo
		switch {
		case n > 1 && i == n-1:
			x = hi // exact endpoint so the last point reads P = 1
		case n > 1:
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		xs[i] = x
		ps[i] = c.At(x)
	}
	return xs, ps
}

// ErrDimensionMismatch reports inconsistent parameter-vector lengths.
var ErrDimensionMismatch = errors.New("stats: parameter vectors have different lengths")

// NormalizedModelDivergence computes Eq. 7 for every parameter j:
//
//	d_j = (1/D) Σ_k |x_{j,k} − x̄_j| / |x̄_j|
//
// where x̄ is the global parameter vector and x_{j,k} is client k's local
// value. Parameters whose global value is (numerically) zero are skipped —
// the paper's normalisation is undefined there.
func NormalizedModelDivergence(clientParams [][]float64, global []float64) ([]float64, error) {
	if len(clientParams) == 0 {
		return nil, errors.New("stats: no client parameter vectors")
	}
	for k, cp := range clientParams {
		if len(cp) != len(global) {
			return nil, fmt.Errorf("%w: client %d has %d, global has %d", ErrDimensionMismatch, k, len(cp), len(global))
		}
	}
	const tiny = 1e-12
	d := make([]float64, 0, len(global))
	inv := 1.0 / float64(len(clientParams))
	for j, gj := range global {
		if math.Abs(gj) < tiny {
			continue
		}
		var sum float64
		for _, cp := range clientParams {
			sum += math.Abs((cp[j] - gj) / gj)
		}
		d = append(d, sum*inv)
	}
	return d, nil
}

// AccuracyTrace is the (accumulated communication rounds, accuracy) series
// extracted from a training run, the unit the figure benches operate on.
type AccuracyTrace struct {
	CumUploads []int
	Accuracy   []float64 // NaN where not evaluated
}

// RoundsToAccuracy returns the accumulated communication rounds at the first
// point where accuracy reached target, and ok=false if it never did.
func (tr *AccuracyTrace) RoundsToAccuracy(target float64) (int, bool) {
	for i, a := range tr.Accuracy {
		if !math.IsNaN(a) && a >= target {
			return tr.CumUploads[i], true
		}
	}
	return 0, false
}

// BestAccuracy returns the maximum evaluated accuracy.
func (tr *AccuracyTrace) BestAccuracy() float64 {
	best := math.NaN()
	for _, a := range tr.Accuracy {
		if math.IsNaN(a) {
			continue
		}
		if math.IsNaN(best) || a > best {
			best = a
		}
	}
	return best
}

// Saving computes the paper's metric Saving_A^a = Φ_vanilla / Φ_A for a
// target accuracy a. ok is false when either trace never reaches the target.
func Saving(vanilla, alg *AccuracyTrace, target float64) (float64, bool) {
	v, okV := vanilla.RoundsToAccuracy(target)
	a, okA := alg.RoundsToAccuracy(target)
	if !okV || !okA || a == 0 {
		return 0, false
	}
	return float64(v) / float64(a), true
}

// Mean returns the arithmetic mean of v (NaN for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
