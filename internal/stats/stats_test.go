package stats

import (
	"math"
	"testing"
	"testing/quick"

	"cmfl/internal/xrand"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.Min() != 1 || c.Max() != 4 {
		t.Errorf("Min/Max = %v/%v, want 1/4", c.Min(), c.Max())
	}
}

func TestCDFDropsNaN(t *testing.T) {
	c := NewCDF([]float64{math.NaN(), 1, math.NaN(), 2})
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.At(1)) || !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Max()) {
		t.Fatal("empty CDF should return NaN everywhere")
	}
	xs, ps := c.Points(5)
	if xs != nil || ps != nil {
		t.Fatal("empty CDF Points should be nil")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if q := c.Quantile(0); q != 10 {
		t.Errorf("Quantile(0) = %v, want 10", q)
	}
	if q := c.Quantile(1); q != 50 {
		t.Errorf("Quantile(1) = %v, want 50", q)
	}
	if q := c.Quantile(0.5); q != 30 {
		t.Errorf("Quantile(0.5) = %v, want 30", q)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		c := NewCDF(rng.NormVec(1+rng.Intn(100), 0, 5))
		xs, ps := c.Points(20)
		for i := 1; i < len(xs); i++ {
			if ps[i] < ps[i-1] {
				return false
			}
		}
		return ps[len(ps)-1] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedModelDivergence(t *testing.T) {
	global := []float64{2, -1, 0} // third param skipped (zero global)
	clients := [][]float64{
		{3, -1, 5},  // |1/2|, 0
		{1, -3, -5}, // |1/2|, |2|
	}
	d, err := NormalizedModelDivergence(clients, global)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 {
		t.Fatalf("got %d divergences, want 2 (zero-global param skipped)", len(d))
	}
	if math.Abs(d[0]-0.5) > 1e-12 {
		t.Errorf("d[0] = %v, want 0.5", d[0])
	}
	if math.Abs(d[1]-1.0) > 1e-12 {
		t.Errorf("d[1] = %v, want 1.0", d[1])
	}
}

func TestNormalizedModelDivergenceErrors(t *testing.T) {
	if _, err := NormalizedModelDivergence(nil, []float64{1}); err == nil {
		t.Fatal("expected error for no clients")
	}
	if _, err := NormalizedModelDivergence([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestDivergenceZeroWhenIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(20)
		g := rng.NormVec(n, 1, 1)
		clients := [][]float64{append([]float64(nil), g...), append([]float64(nil), g...)}
		d, err := NormalizedModelDivergence(clients, g)
		if err != nil {
			return false
		}
		for _, v := range d {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundsToAccuracy(t *testing.T) {
	tr := &AccuracyTrace{
		CumUploads: []int{10, 20, 30, 40},
		Accuracy:   []float64{0.3, math.NaN(), 0.7, 0.9},
	}
	got, ok := tr.RoundsToAccuracy(0.6)
	if !ok || got != 30 {
		t.Fatalf("RoundsToAccuracy(0.6) = %d, %v; want 30, true", got, ok)
	}
	if _, ok := tr.RoundsToAccuracy(0.95); ok {
		t.Fatal("unreached target should return ok=false")
	}
	if best := tr.BestAccuracy(); best != 0.9 {
		t.Fatalf("BestAccuracy = %v, want 0.9", best)
	}
}

func TestSaving(t *testing.T) {
	vanilla := &AccuracyTrace{CumUploads: []int{100, 500, 900}, Accuracy: []float64{0.4, 0.6, 0.8}}
	cmfl := &AccuracyTrace{CumUploads: []int{50, 145, 259}, Accuracy: []float64{0.4, 0.6, 0.8}}
	s, ok := Saving(vanilla, cmfl, 0.6)
	if !ok || math.Abs(s-500.0/145.0) > 1e-12 {
		t.Fatalf("Saving = %v, %v; want %v", s, ok, 500.0/145.0)
	}
	if _, ok := Saving(vanilla, cmfl, 0.99); ok {
		t.Fatal("Saving at unreachable accuracy should be not-ok")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestSummaryMoments(t *testing.T) {
	var s Summary
	if s.String() != "n/a" || !math.IsNaN(s.Mean()) {
		t.Fatal("empty summary should be n/a")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if math.Abs(s.Std()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("range = [%v, %v]", s.Min(), s.Max())
	}
}

func TestSummaryIgnoresNaN(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(math.NaN())
	s.Add(3)
	if s.N() != 2 || s.Mean() != 2 {
		t.Fatalf("NaN not ignored: n=%d mean=%v", s.N(), s.Mean())
	}
}

func TestSummaryMatchesBatchComputation(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(50)
		v := rng.NormVec(n, 1, 2)
		var s Summary
		var sum float64
		for _, x := range v {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(n)
		var sq float64
		for _, x := range v {
			sq += (x - mean) * (x - mean)
		}
		std := math.Sqrt(sq / float64(n-1))
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Std()-std) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0, 0.1, 0.2, 0.9, 1.0}, 2)
	if h.Total != 5 {
		t.Fatalf("Total = %d", h.Total)
	}
	if h.Counts[0] != 3 || h.Counts[1] != 2 {
		t.Fatalf("Counts = %v, want [3 2]", h.Counts)
	}
	if math.Abs(h.Fraction(0)-0.6) > 1e-12 {
		t.Fatalf("Fraction(0) = %v", h.Fraction(0))
	}
	if out := h.Render(20); out == "" || out == "(no data)\n" {
		t.Fatal("histogram render empty")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 4)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("degenerate histogram lost samples: %v", h.Counts)
	}
	empty := NewHistogram(nil, 3)
	if empty.Render(20) != "(no data)\n" {
		t.Fatal("empty histogram should render no data")
	}
}
