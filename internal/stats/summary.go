package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds streaming moments of a sample (Welford's algorithm), used
// to aggregate experiment metrics across seeds without storing every value.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the summary. NaN values are ignored.
func (s *Summary) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if s.n == 0 {
		s.min, s.max = v, v
	}
	s.n++
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
	s.min = math.Min(s.min, v)
	s.max = math.Max(s.max, v)
}

// N returns the number of (non-NaN) observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (NaN when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Std returns the sample standard deviation (NaN for n < 2).
func (s *Summary) Std() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Min returns the smallest observation (NaN when empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation (NaN when empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// String renders "mean ± std [min, max] (n)".
func (s *Summary) String() string {
	if s.n == 0 {
		return "n/a"
	}
	if s.n == 1 {
		return fmt.Sprintf("%.3f (n=1)", s.mean)
	}
	return fmt.Sprintf("%.3f ± %.3f [%.3f, %.3f] (n=%d)", s.Mean(), s.Std(), s.min, s.max, s.n)
}

// Histogram bins a sample into equal-width buckets over [min, max].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram builds a histogram with the given number of bins. NaN values
// are dropped; a degenerate range puts everything in one bin.
func NewHistogram(samples []float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	clean := make([]float64, 0, len(samples))
	for _, v := range samples {
		if !math.IsNaN(v) {
			clean = append(clean, v)
		}
	}
	h := &Histogram{Counts: make([]int, bins)}
	if len(clean) == 0 {
		return h
	}
	sort.Float64s(clean)
	h.Lo, h.Hi = clean[0], clean[len(clean)-1]
	width := (h.Hi - h.Lo) / float64(bins)
	for _, v := range clean {
		idx := 0
		if width > 0 {
			idx = int((v - h.Lo) / width)
			if idx >= bins {
				idx = bins - 1
			}
		}
		h.Counts[idx]++
		h.Total++
	}
	return h
}

// Fraction returns the share of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// Render draws a horizontal ASCII bar chart.
func (h *Histogram) Render(width int) string {
	if width < 10 {
		width = 10
	}
	if h.Total == 0 {
		return "(no data)\n"
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	out := ""
	bins := len(h.Counts)
	binWidth := (h.Hi - h.Lo) / float64(bins)
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		lo := h.Lo + float64(i)*binWidth
		out += fmt.Sprintf("%10.3g |%s %d\n", lo, repeat('#', bar), c)
	}
	return out
}

func repeat(r byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = r
	}
	return string(b)
}
