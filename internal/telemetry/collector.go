package telemetry

import "sync"

// Collector is the bridge from the engine event stream to a Registry: it
// implements Observer and maintains the standard cmfl_* metric families,
// one label set per engine. Metric handles are resolved once per engine on
// the first event and cached, so steady-state OnRound/OnClient calls are
// lock-free map reads plus atomic updates — no allocations on the
// instrumentation path.
type Collector struct {
	reg *Registry

	mu      sync.RWMutex
	engines map[string]*engineMetrics
}

// engineMetrics caches the per-engine metric handles plus the previous
// cumulative values needed to turn the events' running totals into
// monotonic counter increments.
type engineMetrics struct {
	rounds      *Counter
	uploads     *Counter
	skips       *Counter
	uplinkBytes *Counter

	participants *Gauge
	accuracy     *Gauge
	cumUploads   *Gauge

	relevance   *Histogram
	clientBytes *Counter

	stragglers *Counter
	faults     *Counter

	lastCumUploads int
	lastCumBytes   int64
}

// NewCollector creates a Collector writing into reg.
func NewCollector(reg *Registry) *Collector {
	return &Collector{reg: reg, engines: make(map[string]*engineMetrics)}
}

// Registry returns the registry the collector writes into.
func (c *Collector) Registry() *Registry { return c.reg }

// forEngine returns (creating on first sight) the engine's metric handles.
func (c *Collector) forEngine(engine string) *engineMetrics {
	c.mu.RLock()
	em, ok := c.engines[engine]
	c.mu.RUnlock()
	if ok {
		return em
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if em, ok := c.engines[engine]; ok {
		return em
	}
	label := `{engine="` + engine + `"}`
	em = &engineMetrics{
		rounds:       c.reg.Counter("cmfl_rounds_total"+label, "Completed training rounds."),
		uploads:      c.reg.Counter("cmfl_uploads_total"+label, "Client updates uploaded (accumulated communication rounds, Eq. 4)."),
		skips:        c.reg.Counter("cmfl_skips_total"+label, "Client updates withheld by the upload filter."),
		uplinkBytes:  c.reg.Counter("cmfl_uplink_bytes_total"+label, "Application-level uplink bytes (payloads plus skip notifications)."),
		participants: c.reg.Gauge("cmfl_round_participants"+label, "Participants in the most recent round."),
		accuracy:     c.reg.Gauge("cmfl_accuracy"+label, "Most recently evaluated global test accuracy."),
		cumUploads:   c.reg.Gauge("cmfl_cum_uploads"+label, "Accumulated communication rounds so far."),
		relevance:    c.reg.Histogram("cmfl_client_relevance"+label, "Per-client CMFL relevance (Eq. 9) at the upload decision.", RelevanceBuckets()),
		clientBytes:  c.reg.Counter("cmfl_client_uplink_bytes_total"+label, "Uplink bytes attributed to individual client decisions."),
		stragglers:   c.reg.Counter("cmfl_straggler_clients_total"+label, "Clients excluded from aggregation (deadline stragglers or dropout)."),
		faults:       c.reg.Counter("cmfl_fault_events_total"+label, "Transport faults observed (connection failures, malformed frames)."),
	}
	c.engines[engine] = em
	return em
}

// OnRound implements Observer.
func (c *Collector) OnRound(e RoundEvent) {
	em := c.forEngine(e.Engine)
	em.rounds.Inc()
	em.uploads.Add(int64(e.Uploaded))
	em.skips.Add(int64(e.Skipped))
	// The event carries running totals; counters want increments. Engines
	// emit rounds in order from one goroutine, so the subtraction is safe.
	em.uplinkBytes.Add(e.CumUplinkBytes - em.lastCumBytes)
	em.lastCumBytes = e.CumUplinkBytes
	em.lastCumUploads = e.CumUploads
	em.stragglers.Add(int64(e.Dropped))
	em.faults.Add(int64(e.Faults))
	em.participants.Set(float64(e.Participants))
	em.cumUploads.Set(float64(e.CumUploads))
	if e.Evaluated() {
		em.accuracy.Set(e.Accuracy)
	}
}

// OnClient implements Observer.
func (c *Collector) OnClient(e ClientEvent) {
	em := c.forEngine(e.Engine)
	em.relevance.Observe(e.Relevance) // NaN (no feedback) is dropped
	em.clientBytes.Add(e.UplinkBytes)
}
