package telemetry

import (
	"math"
	"testing"
)

func TestCollectorDeltasAndGauges(t *testing.T) {
	reg := NewRegistry()
	col := NewCollector(reg)

	col.OnClient(ClientEvent{Engine: EngineSync, Round: 1, Client: 0, Uploaded: true, Relevance: 0.8, UplinkBytes: 100})
	col.OnClient(ClientEvent{Engine: EngineSync, Round: 1, Client: 1, Uploaded: false, Relevance: 0.1, UplinkBytes: 16})
	col.OnRound(RoundEvent{Engine: EngineSync, Round: 1, Participants: 2, Uploaded: 1, Skipped: 1,
		CumUploads: 1, CumUplinkBytes: 116, Accuracy: 0.5})
	col.OnRound(RoundEvent{Engine: EngineSync, Round: 2, Participants: 2, Uploaded: 2, Skipped: 0,
		CumUploads: 3, CumUplinkBytes: 316, Accuracy: math.NaN()})

	snap := reg.Snapshot()
	checks := map[string]float64{
		`cmfl_rounds_total{engine="fl"}`:              2,
		`cmfl_uploads_total{engine="fl"}`:             3,
		`cmfl_skips_total{engine="fl"}`:               1,
		`cmfl_uplink_bytes_total{engine="fl"}`:        316, // cumulative totals → increments
		`cmfl_client_uplink_bytes_total{engine="fl"}`: 116,
		`cmfl_round_participants{engine="fl"}`:        2,
		`cmfl_cum_uploads{engine="fl"}`:               3,
		`cmfl_accuracy{engine="fl"}`:                  0.5, // NaN round must not clobber
		`cmfl_client_relevance_count{engine="fl"}`:    2,
	}
	for k, want := range checks {
		if got := snap[k]; got != want {
			t.Errorf("%s = %v, want %v", k, got, want)
		}
	}
}

func TestCollectorSeparatesEngines(t *testing.T) {
	reg := NewRegistry()
	col := NewCollector(reg)
	col.OnRound(RoundEvent{Engine: EngineSync, Round: 1, Uploaded: 2, CumUplinkBytes: 10})
	col.OnRound(RoundEvent{Engine: EngineMTL, Round: 1, Uploaded: 7, CumUplinkBytes: 99})
	snap := reg.Snapshot()
	if snap[`cmfl_uploads_total{engine="fl"}`] != 2 || snap[`cmfl_uploads_total{engine="mtl"}`] != 7 {
		t.Fatalf("engines not separated: %v", snap)
	}
	if snap[`cmfl_uplink_bytes_total{engine="fl"}`] != 10 || snap[`cmfl_uplink_bytes_total{engine="mtl"}`] != 99 {
		t.Fatalf("byte counters not separated: %v", snap)
	}
}

func TestCollectorSteadyStateAllocationFree(t *testing.T) {
	reg := NewRegistry()
	col := NewCollector(reg)
	// Warm the engine handle cache.
	col.OnRound(RoundEvent{Engine: EngineSync, Round: 1})
	e := RoundEvent{Engine: EngineSync, Round: 2, Participants: 4, Uploaded: 3, Skipped: 1,
		CumUploads: 3, CumUplinkBytes: 1000, Accuracy: math.NaN()}
	ce := ClientEvent{Engine: EngineSync, Round: 2, Client: 1, Uploaded: true, Relevance: 0.6, UplinkBytes: 128}
	allocs := testing.AllocsPerRun(1000, func() {
		col.OnClient(ce)
		col.OnRound(e)
	})
	if allocs != 0 {
		t.Fatalf("steady-state collector allocates %v per round, want 0", allocs)
	}
}
