// Package telemetry is the repository's unified observability layer: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms), a RoundEvent schema shared by every training engine, and an
// Observer interface the engines invoke as training progresses.
//
// The paper's entire claim is measured in communication — accumulated
// communication rounds (Eq. 4) and uplink bytes — so those quantities must
// be observable *while* a run is in flight, not reconstructed from result
// histories afterwards. Every engine (fl.Run, fl.RunPartial, fl.RunAsync,
// mtl.Run and the TCP emulation master) emits the same RoundEvent through
// the same Observer interface; Collector turns the event stream into
// registry metrics, and Handler exposes the registry as a Prometheus-text
// /metrics and JSON /healthz endpoint.
//
// Instrumentation stays off the per-step training hot path: events are
// emitted once per round (or per async completion), never per minibatch,
// and the built-in observers are allocation-free at steady state.
package telemetry

import "math"

// Engine labels used by the built-in engines when emitting events.
const (
	EngineSync    = "fl"
	EnginePartial = "fl-partial"
	EngineAsync   = "fl-async"
	EngineMTL     = "mtl"
	EngineEmu     = "emu"
	EngineSim     = "sim"
)

// RoundEvent is the communication-cost core every engine records per round:
// who participated, who uploaded, what it cost so far, and where accuracy
// stands. The per-engine stats types (fl.RoundStats, fl.PartialRoundStats,
// mtl.RoundStats, emu.RoundStats) embed it instead of re-declaring the
// fields, so one schema serves result histories and live observation alike.
type RoundEvent struct {
	// Engine identifies the emitting engine (see the Engine* constants).
	Engine string
	// Round is the 1-based synchronous round number; asynchronous engines
	// use the 1-based completion index.
	Round int
	// Participants is the number of clients that took part this round.
	Participants int
	// Uploaded / Skipped split the participants by the filter's verdict.
	Uploaded int
	Skipped  int
	// CumUploads is Φ, the accumulated communication rounds (Eq. 4).
	CumUploads int
	// CumUplinkBytes counts update payloads plus skip notifications at the
	// application level (the paper's byte metric).
	CumUplinkBytes int64
	// Dropped is the number of clients excluded from this round's
	// aggregation: stragglers cut at the quorum deadline (emu) or clients
	// that sat the round out entirely (fl-partial dropout). Always 0 for
	// engines without partial participation.
	Dropped int
	// Faults is the number of transport faults observed this round:
	// connection failures, malformed frames, protocol violations. Only the
	// emulation engine, which has a real network stack, can report nonzero
	// values.
	Faults int
	// Accuracy is the global test accuracy after this round's aggregation;
	// NaN on rounds without evaluation.
	Accuracy float64
}

// Event returns the event itself; through struct embedding it makes every
// per-engine stats type implement Eventer, so generic helpers (e.g.
// experiments.TraceOf) can consume any engine's history.
func (e RoundEvent) Event() RoundEvent { return e }

// Evaluated reports whether this round carries an accuracy measurement.
func (e RoundEvent) Evaluated() bool { return !math.IsNaN(e.Accuracy) }

// Eventer is implemented by any stats struct that embeds RoundEvent.
type Eventer interface {
	Event() RoundEvent
}

// ClientEvent records one client's upload/skip decision inside a round —
// the per-client stream behind upload-fraction and relevance-distribution
// observability.
type ClientEvent struct {
	// Engine identifies the emitting engine.
	Engine string
	// Round matches the RoundEvent the decision belongs to; engines emit
	// every ClientEvent of a round before that round's RoundEvent.
	Round int
	// Client is the client (or task) index.
	Client int
	// Uploaded reports the filter's verdict for this client's update.
	Uploaded bool
	// Relevance is the CMFL Eq. 9 metric at the decision (NaN when no
	// feedback existed or the filter does not compute it).
	Relevance float64
	// UplinkBytes is what the decision cost: the payload size for uploads,
	// the skip-notification size otherwise.
	UplinkBytes int64
}

// Observer receives engine telemetry. Implementations must be safe for use
// from the engine goroutine; engines call OnClient for every participant of
// a round (in client order) and then OnRound exactly once, synchronously,
// so an observer needs no locking against the emitting engine itself.
type Observer interface {
	OnRound(RoundEvent)
	OnClient(ClientEvent)
}

// Funcs adapts plain functions to Observer; nil fields are skipped.
type Funcs struct {
	Round  func(RoundEvent)
	Client func(ClientEvent)
}

// OnRound implements Observer.
func (f Funcs) OnRound(e RoundEvent) {
	if f.Round != nil {
		f.Round(e)
	}
}

// OnClient implements Observer.
func (f Funcs) OnClient(e ClientEvent) {
	if f.Client != nil {
		f.Client(e)
	}
}

// EmitRound delivers a round event to every observer in order.
func EmitRound(obs []Observer, e RoundEvent) {
	for _, o := range obs {
		o.OnRound(e)
	}
}

// EmitClient delivers a client event to every observer in order.
func EmitClient(obs []Observer, e ClientEvent) {
	for _, o := range obs {
		o.OnClient(e)
	}
}
