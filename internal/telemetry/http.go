package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"time"
)

// Handler exposes a registry over HTTP:
//
//	GET /metrics  — Prometheus text exposition (version 0.0.4)
//	GET /healthz  — JSON liveness view with a flattened metric snapshot
//
// It is what the emulation master mounts while a cluster runs, and what a
// production deployment would hand to its scrape infrastructure.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		// JSON has no NaN; report unevaluated metrics as null.
		metrics := make(map[string]interface{}, len(snap))
		for k, v := range snap {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				metrics[k] = nil
				continue
			}
			metrics[k] = v
		}
		w.Header().Set("Content-Type", "application/json")
		//cmfl:lint-ignore errcheck an encode error here means the scraper hung up mid-response; a handler has nobody to report it to
		json.NewEncoder(w).Encode(struct {
			Status  string                 `json:"status"`
			Metrics map[string]interface{} `json:"metrics"`
		}{Status: "ok", Metrics: metrics})
	})
	return mux
}

// MetricsServer is a live /metrics + /healthz endpoint bound to a TCP port.
type MetricsServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when the serve goroutine exits
}

// Serve binds addr (e.g. "127.0.0.1:0") and serves Handler(reg) in the
// background until Close.
func Serve(addr string, reg *Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 10 * time.Second}
	ms := &MetricsServer{ln: ln, srv: srv, done: make(chan struct{})}
	go ms.serve()
	return ms, nil
}

// serve runs the HTTP server until Close and signals completion on done.
func (s *MetricsServer) serve() {
	defer close(s.done)
	//cmfl:lint-ignore errcheck Serve always returns ErrServerClosed once Close fires; there is nothing to handle
	_ = s.srv.Serve(s.ln)
}

// Addr returns the bound address, with any ephemeral port resolved.
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close stops serving, releases the port, and waits for the serve
// goroutine to exit, so no handler runs past Close.
func (s *MetricsServer) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
