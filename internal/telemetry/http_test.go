package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`cmfl_uploads_total{engine="fl"}`, "Uploads.").Add(5)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `cmfl_uploads_total{engine="fl"} 5`) {
		t.Fatalf("metrics body missing series:\n%s", body)
	}
}

func TestHandlerHealthz(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c", "").Add(3)
	reg.Gauge("acc", "").Set(0.25)
	reg.Gauge("unset", "").Set(math.NaN())
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Status  string                 `json:"status"`
		Metrics map[string]interface{} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Status != "ok" {
		t.Fatalf("status = %q", payload.Status)
	}
	if payload.Metrics["c"] != float64(3) || payload.Metrics["acc"] != 0.25 {
		t.Fatalf("metrics = %v", payload.Metrics)
	}
	if v, present := payload.Metrics["unset"]; !present || v != nil {
		t.Fatalf("NaN gauge should serialise as null, got %v (present=%v)", v, present)
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("alive", "").Inc()
	ms, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	resp, err := http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "alive 1") {
		t.Fatalf("live endpoint missing series:\n%s", body)
	}
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + ms.Addr() + "/metrics"); err == nil {
		t.Fatal("endpoint should refuse connections after Close")
	}
}
