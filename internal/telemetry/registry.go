package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics and renders them in Prometheus text format.
// Metric names may carry an inline label set, e.g.
// `cmfl_uploads_total{engine="fl"}`; series sharing the base name are
// grouped under one HELP/TYPE header on exposition. Lookup-or-create is
// guarded by a mutex, but the returned metric handles update lock-free
// (atomics), so per-round instrumentation does not contend or allocate.
type Registry struct {
	mu   sync.RWMutex
	byID map[string]metric
	ids  []string // registration order
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]metric)}
}

// metric is the common behaviour of Counter, Gauge and Histogram.
type metric interface {
	metricType() string
	help() string
	// writeSeries appends the metric's sample lines (without HELP/TYPE).
	writeSeries(w *bufio.Writer, id string)
	// snapshot appends flattened name->value pairs for the JSON view.
	snapshot(id string, out map[string]float64)
}

// baseName strips an inline label set: `foo{a="b"}` -> `foo`.
func baseName(id string) string {
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[:i]
	}
	return id
}

// lookup returns the metric registered under id, creating it with make when
// absent. Type mismatches between an existing metric and the requested kind
// panic: they are programming errors, like Prometheus client libraries treat
// them.
func (r *Registry) lookup(id string, make func() metric) metric {
	r.mu.RLock()
	m, ok := r.byID[id]
	r.mu.RUnlock()
	if ok {
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byID[id]; ok {
		return m
	}
	m = make()
	r.byID[id] = m
	r.ids = append(r.ids, id)
	return m
}

// Counter returns (registering on first use) the monotonically increasing
// counter named id.
func (r *Registry) Counter(id, help string) *Counter {
	m := r.lookup(id, func() metric { return &Counter{helpText: help} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %s", id, m.metricType()))
	}
	return c
}

// Gauge returns (registering on first use) the gauge named id.
func (r *Registry) Gauge(id, help string) *Gauge {
	m := r.lookup(id, func() metric { return &Gauge{helpText: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %s", id, m.metricType()))
	}
	return g
}

// Histogram returns (registering on first use) the fixed-bucket histogram
// named id. bounds are the inclusive bucket upper limits in increasing
// order; a +Inf overflow bucket is implicit. bounds are only consulted on
// first registration.
func (r *Registry) Histogram(id, help string, bounds []float64) *Histogram {
	m := r.lookup(id, func() metric { return newHistogram(help, bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as %s", id, m.metricType()))
	}
	return h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), grouping series that share a base name
// under a single HELP/TYPE header.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	ids := append([]string(nil), r.ids...)
	byID := make(map[string]metric, len(ids))
	for _, id := range ids {
		byID[id] = r.byID[id]
	}
	r.mu.RUnlock()
	sort.Strings(ids)

	bw := bufio.NewWriter(w)
	lastBase := ""
	for _, id := range ids {
		m := byID[id]
		if b := baseName(id); b != lastBase {
			lastBase = b
			if h := m.help(); h != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", b, h)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", b, m.metricType())
		}
		m.writeSeries(bw, id)
	}
	return bw.Flush()
}

// Snapshot returns a flat name->value view of every metric (histograms
// contribute their count and sum), for the JSON health endpoint and tests.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.RLock()
	ids := append([]string(nil), r.ids...)
	byID := make(map[string]metric, len(ids))
	for _, id := range ids {
		byID[id] = r.byID[id]
	}
	r.mu.RUnlock()
	out := make(map[string]float64, len(ids))
	for _, id := range ids {
		byID[id].snapshot(id, out)
	}
	return out
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// seriesName splices extra labels into an id that may already carry some:
// seriesName(`foo{a="b"}`, `le="0.5"`) -> `foo{a="b",le="0.5"}`.
func seriesName(id, extra string) string {
	if extra == "" {
		return id
	}
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[:len(id)-1] + "," + extra + "}"
	}
	return id + "{" + extra + "}"
}

// suffixName appends a name suffix before any label set:
// suffixName(`foo{a="b"}`, "_bucket") -> `foo_bucket{a="b"}`.
func suffixName(id, suffix string) string {
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[:i] + suffix + id[i:]
	}
	return id + suffix
}

// ---- Counter ----

// Counter is a monotonically increasing int64 metric (bytes, uploads,
// rounds). All methods are lock-free and allocation-free.
type Counter struct {
	v        atomic.Int64
	helpText string
}

// Add increases the counter; negative deltas are ignored to keep the
// counter monotonic.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricType() string { return "counter" }
func (c *Counter) help() string       { return c.helpText }

func (c *Counter) writeSeries(w *bufio.Writer, id string) {
	fmt.Fprintf(w, "%s %d\n", id, c.Value())
}

func (c *Counter) snapshot(id string, out map[string]float64) {
	out[id] = float64(c.Value())
}

// ---- Gauge ----

// Gauge is a float64 metric that can move in both directions (accuracy,
// thresholds, queue depths). All methods are lock-free and allocation-free.
type Gauge struct {
	bits     atomic.Uint64
	helpText string
}

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value (zero before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) help() string       { return g.helpText }

func (g *Gauge) writeSeries(w *bufio.Writer, id string) {
	fmt.Fprintf(w, "%s %s\n", id, formatValue(g.Value()))
}

func (g *Gauge) snapshot(id string, out map[string]float64) {
	out[id] = g.Value()
}

// ---- Histogram ----

// Histogram counts observations into fixed buckets (cumulative on
// exposition, like Prometheus). Observe is lock-free and allocation-free;
// the bucket layout is fixed at registration, which is what keeps the hot
// path cheap.
type Histogram struct {
	bounds   []float64
	counts   []atomic.Int64 // one per bound, plus +Inf overflow at the end
	sumBits  atomic.Uint64
	total    atomic.Int64
	helpText string
}

func newHistogram(help string, bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds:   b,
		counts:   make([]atomic.Int64, len(b)+1),
		helpText: help,
	}
}

// RelevanceBuckets covers CMFL's Eq. 9 sign-agreement fraction in [0, 1]
// at 0.05 resolution — the distribution behind Fig. 2b.
func RelevanceBuckets() []float64 {
	b := make([]float64, 21)
	for i := range b {
		b[i] = float64(i) * 0.05
	}
	return b
}

// LatencyBuckets is an exponential grid from 1ms to ~65s, for round or
// client wall-clock durations expressed in seconds.
func LatencyBuckets() []float64 {
	b := make([]float64, 17)
	v := 0.001
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// Observe records one sample. NaN samples are dropped (they carry no
// distributional information and would poison the sum).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// Binary search keeps wide grids cheap; bounds are sorted ascending.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket counts,
// the way promql's histogram_quantile does: find the bucket holding the
// q·count-th observation and interpolate linearly inside it. Returns NaN
// for an empty histogram or q outside [0, 1]. The estimate is exact at
// bucket boundaries and resolution-limited inside them — callers wanting
// tight tails (p999) should register grids dense where it matters. An
// observation landing in the +Inf overflow bucket reports the highest
// finite bound (there is nothing to interpolate toward).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, bound := range h.bounds {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lower + (bound-lower)*frac
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return math.NaN() // only the +Inf bucket exists: no finite estimate
	}
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) help() string       { return h.helpText }

func (h *Histogram) writeSeries(w *bufio.Writer, id string) {
	bucket := suffixName(id, "_bucket")
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s %d\n", seriesName(bucket, fmt.Sprintf("le=%q", formatValue(bound))), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s %d\n", seriesName(bucket, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s %s\n", suffixName(id, "_sum"), formatValue(h.Sum()))
	fmt.Fprintf(w, "%s %d\n", suffixName(id, "_count"), h.Count())
}

func (h *Histogram) snapshotKeys(id string) (count, sum string) {
	return suffixName(id, "_count"), suffixName(id, "_sum")
}

func (h *Histogram) snapshot(id string, out map[string]float64) {
	count, sum := h.snapshotKeys(id)
	out[count] = float64(h.Count())
	out[sum] = h.Sum()
}
