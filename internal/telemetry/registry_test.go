package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("requests_total", "Total requests.")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := reg.Counter("requests_total", ""); again != c {
		t.Fatal("lookup did not return the registered counter")
	}

	g := reg.Gauge("accuracy", "Current accuracy.")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", got)
	}
	g.Set(0.5)
	if got := g.Value(); got != 0.5 {
		t.Fatalf("gauge = %v, want 0.5", got)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge should panic")
		}
	}()
	reg.Gauge("m", "")
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("rel", "", []float64{0.25, 0.5, 0.75, 1})
	for _, v := range []float64{0.1, 0.3, 0.3, 0.6, 0.9, 2, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 6 { // NaN dropped
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-4.2) > 1e-12 {
		t.Fatalf("sum = %v, want 4.2", h.Sum())
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`rel_bucket{le="0.25"} 1`,
		`rel_bucket{le="0.5"} 3`,
		`rel_bucket{le="0.75"} 4`,
		`rel_bucket{le="1"} 5`,
		`rel_bucket{le="+Inf"} 6`,
		`rel_count 6`,
		"# TYPE rel histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "", []float64{1, 2, 4, 8})

	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram must report NaN")
	}

	// 10 observations in (1,2]: every quantile interpolates inside [1,2].
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got != 1.5 {
		t.Fatalf("p50 of a single-bucket distribution = %v, want 1.5 (midpoint interpolation)", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Fatalf("p100 = %v, want the bucket's upper bound 2", got)
	}

	// Add 10 in (4,8]: now p50 sits exactly on the first bucket's boundary.
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %v, want exact boundary 2", got)
	}
	if got := h.Quantile(0.75); got != 6 {
		t.Fatalf("p75 = %v, want 6 (midpoint of (4,8])", got)
	}

	// Overflow bucket: quantiles landing there clamp to the top finite bound.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	if got := h.Quantile(0.999); got != 8 {
		t.Fatalf("p999 with overflow mass = %v, want top bound 8", got)
	}

	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(h.Quantile(q)) {
			t.Fatalf("Quantile(%v) must be NaN", q)
		}
	}
}

func TestPrometheusGroupsLabeledSeries(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`uploads_total{engine="fl"}`, "Uploads.").Add(3)
	reg.Counter(`uploads_total{engine="emu"}`, "Uploads.").Add(9)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# TYPE uploads_total counter") != 1 {
		t.Fatalf("want exactly one TYPE header for the family:\n%s", out)
	}
	if !strings.Contains(out, `uploads_total{engine="emu"} 9`) ||
		!strings.Contains(out, `uploads_total{engine="fl"} 3`) {
		t.Fatalf("missing labeled series:\n%s", out)
	}
}

func TestLabeledHistogramSeriesNames(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram(`lat{engine="fl"}`, "", []float64{1})
	h.Observe(0.5)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_bucket{engine="fl",le="1"} 1`,
		`lat_bucket{engine="fl",le="+Inf"} 1`,
		`lat_sum{engine="fl"} 0.5`,
		`lat_count{engine="fl"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c", "").Add(2)
	reg.Gauge("g", "").Set(1.5)
	reg.Histogram("h", "", []float64{1}).Observe(0.25)
	snap := reg.Snapshot()
	if snap["c"] != 2 || snap["g"] != 1.5 || snap["h_count"] != 1 || snap["h_sum"] != 0.25 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c", "")
	h := reg.Histogram("h", "", RelevanceBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter = %d, histogram count = %d, want 8000", c.Value(), h.Count())
	}
	if math.Abs(h.Sum()-4000) > 1e-9 {
		t.Fatalf("histogram sum = %v, want 4000", h.Sum())
	}
}

func TestObserveIsAllocationFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "", RelevanceBuckets())
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		g.Set(0.5)
		h.Observe(0.7)
	})
	if allocs != 0 {
		t.Fatalf("metric updates allocate %v times per round, want 0", allocs)
	}
}

// TestHistogramQuantileEdgeCases pins the degenerate shapes the soak report
// can hit: q=0 (lower edge of the first occupied bucket), a grid with no
// finite bounds (nothing to interpolate — NaN even with observations), a
// single-bound grid, and the NaN-observation guard.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	reg := NewRegistry()

	h := reg.Histogram("edge", "", []float64{1, 2, 4, 8})
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	if got := h.Quantile(0); got != 2 {
		t.Errorf("Quantile(0) = %v, want 2 (lower edge of the occupied (2,4] bucket)", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4 (upper edge of the occupied bucket)", got)
	}

	// Only the implicit +Inf bucket: observations land but no finite
	// estimate exists at any quantile.
	inf := reg.Histogram("edge_inf", "", nil)
	inf.Observe(7)
	if got := inf.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("Quantile on a boundless grid = %v, want NaN", got)
	}
	if inf.Count() != 1 {
		t.Errorf("boundless grid count = %d, want 1 (the observation still counts)", inf.Count())
	}

	// A single finite bound interpolates from zero.
	one := reg.Histogram("edge_one", "", []float64{10})
	for i := 0; i < 4; i++ {
		one.Observe(5)
	}
	if got := one.Quantile(0.5); got != 5 {
		t.Errorf("single-bound p50 = %v, want 5 (midpoint of [0,10])", got)
	}

	// NaN observations are dropped entirely: no count, no sum poisoning.
	n := reg.Histogram("edge_nan", "", []float64{1})
	n.Observe(0.5)
	n.Observe(math.NaN())
	if n.Count() != 1 {
		t.Errorf("count after NaN observation = %d, want 1", n.Count())
	}
	if got := n.Sum(); got != 0.5 {
		t.Errorf("sum after NaN observation = %v, want 0.5", got)
	}
	if got := n.Quantile(0.5); math.IsNaN(got) {
		t.Error("NaN observation poisoned the quantile estimate")
	}
}
