package tensor

import (
	"errors"
	"math"
)

// ErrNoConvergence reports that an iterative decomposition did not reach the
// requested tolerance within its sweep budget.
var ErrNoConvergence = errors.New("tensor: eigendecomposition did not converge")

// SymEig computes the eigendecomposition of a symmetric n×n matrix using
// cyclic Jacobi rotations. It returns the eigenvalues and a matrix whose
// columns are the corresponding orthonormal eigenvectors (A = V·diag(w)·Vᵀ).
//
// The input is not modified. Matrices up to a few hundred rows converge in
// well under 30 sweeps, which covers MOCHA's client-relationship matrices.
func SymEig(a *Tensor) (eigenvalues []float64, eigenvectors *Tensor, err error) {
	if len(a.Shape) != 2 || a.Shape[0] != a.Shape[1] {
		return nil, nil, errors.New("tensor: SymEig requires a square matrix")
	}
	n := a.Shape[0]
	m := a.Clone()
	v := Identity(n)

	const (
		maxSweeps = 100
		tol       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off < tol {
			w := make([]float64, n)
			for i := 0; i < n; i++ {
				w[i] = m.At(i, i)
			}
			return w, v, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < tol/float64(n*n) {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}
	return nil, nil, ErrNoConvergence
}

// rotate applies the Jacobi rotation J(p,q,c,s) to m (two-sided) and
// accumulates it into v (one-sided).
func rotate(m, v *Tensor, p, q int, c, s float64) {
	n := m.Shape[0]
	for i := 0; i < n; i++ {
		mip, miq := m.At(i, p), m.At(i, q)
		m.Set(i, p, c*mip-s*miq)
		m.Set(i, q, s*mip+c*miq)
	}
	for j := 0; j < n; j++ {
		mpj, mqj := m.At(p, j), m.At(q, j)
		m.Set(p, j, c*mpj-s*mqj)
		m.Set(q, j, s*mpj+c*mqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(m *Tensor) float64 {
	n := m.Shape[0]
	var s float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				x := m.At(i, j)
				s += x * x
			}
		}
	}
	return math.Sqrt(s)
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Tensor {
	id := New(n, n)
	for i := 0; i < n; i++ {
		id.Set(i, i, 1)
	}
	return id
}

// SymSqrt returns the positive-semidefinite square root of a symmetric PSD
// matrix via its eigendecomposition. Slightly negative eigenvalues caused by
// round-off are clamped to zero.
func SymSqrt(a *Tensor) (*Tensor, error) {
	w, v, err := SymEig(a)
	if err != nil {
		return nil, err
	}
	n := a.Shape[0]
	// V · diag(sqrt(w)) · Vᵀ
	scaled := New(n, n)
	for j := 0; j < n; j++ {
		r := math.Sqrt(math.Max(w[j], 0))
		for i := 0; i < n; i++ {
			scaled.Set(i, j, v.At(i, j)*r)
		}
	}
	return MatMulTransB(scaled, v), nil
}

// Trace returns the sum of the diagonal of a square matrix.
func Trace(a *Tensor) float64 {
	n := a.Shape[0]
	var s float64
	for i := 0; i < n; i++ {
		s += a.At(i, i)
	}
	return s
}
