package tensor

// Elementwise hot-path helpers with AVX-512 fast paths (see
// elemwise_avx512_amd64.s) behind the same simdGEMM switch as the GEMM
// kernels. The Go loops are the reference semantics.

// Axpy computes y[i] += alpha*x[i]. Slices must have equal length.
//
//cmfl:hotpath
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	if len(x) == 0 {
		return
	}
	if simdGEMM {
		axpyAVX(alpha, &x[0], &y[0], uintptr(len(x)))
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ReLUFwd computes dst[i] = max(x[i], 0).
//
//cmfl:hotpath
func ReLUFwd(dst, x []float64) {
	if len(dst) != len(x) {
		panic("tensor: ReLUFwd length mismatch")
	}
	if len(x) == 0 {
		return
	}
	if simdGEMM {
		reluFwdAVX(&dst[0], &x[0], uintptr(len(x)))
		return
	}
	for i, v := range x {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// ReLUBwd computes dst[i] = grad[i] where x[i] > 0 and 0 elsewhere.
//
//cmfl:hotpath
func ReLUBwd(dst, grad, x []float64) {
	if len(dst) != len(grad) || len(dst) != len(x) {
		panic("tensor: ReLUBwd length mismatch")
	}
	if len(x) == 0 {
		return
	}
	if simdGEMM {
		reluBwdAVX(&dst[0], &grad[0], &x[0], uintptr(len(x)))
		return
	}
	for i, v := range x {
		if v > 0 {
			dst[i] = grad[i]
		} else {
			dst[i] = 0
		}
	}
}
