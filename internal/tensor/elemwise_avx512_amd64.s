// AVX-512 elementwise kernels for the training hot paths: SGD axpy updates
// and ReLU forward/backward. Tail elements are handled with masked ops so the
// whole slice goes through the same instruction sequence.

#include "textflag.h"

// func axpyAVX(alpha float64, x, y *float64, n uintptr)
// y[i] += alpha * x[i] for i in [0, n)
TEXT ·axpyAVX(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Z0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX
	MOVQ CX, DX
	SHRQ $3, CX
	ANDQ $7, DX
	TESTQ CX, CX
	JZ   axpytail

axpyloop:
	VMOVUPD (DI), Z1
	VFMADD231PD (SI), Z0, Z1
	VMOVUPD Z1, (DI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  axpyloop

axpytail:
	TESTQ DX, DX
	JZ    axpydone
	MOVQ  $1, AX
	MOVQ  DX, CX
	SHLQ  CX, AX
	DECQ  AX
	KMOVW AX, K1
	VMOVUPD.Z (DI), K1, Z1
	VMOVUPD.Z (SI), K1, Z2
	VFMADD231PD Z2, Z0, Z1
	VMOVUPD Z1, K1, (DI)

axpydone:
	VZEROUPPER
	RET

// func reluFwdAVX(dst, x *float64, n uintptr)
// dst[i] = max(x[i], 0)
TEXT ·reluFwdAVX(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	VPXORQ Z0, Z0, Z0
	MOVQ CX, DX
	SHRQ $3, CX
	ANDQ $7, DX
	TESTQ CX, CX
	JZ   rfwdtail

rfwdloop:
	VMOVUPD (SI), Z1
	VMAXPD Z0, Z1, Z1
	VMOVUPD Z1, (DI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  rfwdloop

rfwdtail:
	TESTQ DX, DX
	JZ    rfwddone
	MOVQ  $1, AX
	MOVQ  DX, CX
	SHLQ  CX, AX
	DECQ  AX
	KMOVW AX, K1
	VMOVUPD.Z (SI), K1, Z1
	VMAXPD Z0, Z1, Z1
	VMOVUPD Z1, K1, (DI)

rfwddone:
	VZEROUPPER
	RET

// func reluBwdAVX(dst, grad, x *float64, n uintptr)
// dst[i] = grad[i] if x[i] > 0 else 0
TEXT ·reluBwdAVX(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ grad+8(FP), BX
	MOVQ x+16(FP), SI
	MOVQ n+24(FP), CX
	VPXORQ Z0, Z0, Z0
	MOVQ CX, DX
	SHRQ $3, CX
	ANDQ $7, DX
	TESTQ CX, CX
	JZ   rbwdtail

rbwdloop:
	VMOVUPD (SI), Z1
	VCMPPD $14, Z0, Z1, K1     // K1[i] = x[i] > 0 (GT_OS)
	VMOVUPD.Z (BX), K1, Z2
	VMOVUPD Z2, (DI)
	ADDQ $64, SI
	ADDQ $64, BX
	ADDQ $64, DI
	DECQ CX
	JNZ  rbwdloop

rbwdtail:
	TESTQ DX, DX
	JZ    rbwddone
	MOVQ  $1, AX
	MOVQ  DX, CX
	SHLQ  CX, AX
	DECQ  AX
	KMOVW AX, K2
	VMOVUPD.Z (SI), K2, Z1     // masked-out lanes read as 0 -> compare false
	VCMPPD $14, Z0, Z1, K1
	VMOVUPD.Z (BX), K1, Z2
	VMOVUPD Z2, K2, (DI)

rbwddone:
	VZEROUPPER
	RET
