package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestElemwiseSIMDMatchesGo checks Axpy/ReLUFwd/ReLUBwd across lengths that
// exercise every masked-tail case (n mod 8 = 0..7), against scalar references.
func TestElemwiseSIMDMatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	lengths := []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 100, 1000}
	for _, n := range lengths {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		// Mix in exact zeros and negatives for the ReLU boundary.
		for i := 0; i < n; i += 3 {
			x[i] = 0
		}
		alpha := rng.NormFloat64()

		wantAxpy := append([]float64(nil), y...)
		for i := range x {
			wantAxpy[i] += alpha * x[i]
		}
		gotAxpy := append([]float64(nil), y...)
		Axpy(alpha, x, gotAxpy)
		for i := range wantAxpy {
			if math.Abs(gotAxpy[i]-wantAxpy[i]) > 1e-12*math.Max(1, math.Abs(wantAxpy[i])) {
				t.Fatalf("n=%d Axpy[%d] = %v, want %v", n, i, gotAxpy[i], wantAxpy[i])
			}
		}

		gotF := make([]float64, n)
		ReLUFwd(gotF, x)
		gotB := make([]float64, n)
		ReLUBwd(gotB, y, x)
		for i := range x {
			wantF, wantB := 0.0, 0.0
			if x[i] > 0 {
				wantF, wantB = x[i], y[i]
			}
			if gotF[i] != wantF {
				t.Fatalf("n=%d ReLUFwd[%d] = %v, want %v (x=%v)", n, i, gotF[i], wantF, x[i])
			}
			if gotB[i] != wantB {
				t.Fatalf("n=%d ReLUBwd[%d] = %v, want %v (x=%v)", n, i, gotB[i], wantB, x[i])
			}
		}
	}
}
