package tensor

import "fmt"

// This file is the compute substrate's GEMM core. Three layouts cover every
// product the training code needs:
//
//	MatMulInto       dst = a·b       (forward activations)
//	MatMulTransAInto dst = aᵀ·b      (weight gradients)
//	MatMulTransBInto dst = a·bᵀ      (input gradients)
//
// plus Add* accumulate variants for gradient accumulation. All kernels are
// register-tiled: a 4×2 (NN, TransA) or 2×2 (TransB) block of the output is
// accumulated in registers while the inner k-loop streams the operands, so
// each load feeds several multiply-adds instead of one. Matrices whose flop
// count crosses gemmParallelFlops are split into row panels and executed on
// the shared worker pool (see pool.go); each output element is produced by
// exactly one goroutine with a fixed accumulation order, so results are
// bitwise identical at any parallelism level.
//
// NN and TransA accumulate every output element in ascending-p order — bit
// for bit the naive triple loop. TransB uses two-way partial sums (dot2),
// which reassociates the k-sum; equivalence tests pin every kernel to the
// naive reference within 1e-12 relative error.

// simdGEMM selects the hand-written AVX-512 kernels (gemm_avx512_amd64.s)
// when the CPU supports them; the pure-Go kernels below are the reference
// implementation and the fallback everywhere else.
var simdGEMM bool

func gemmNN(dst, a, b []float64, k, n, lo, hi int, accum bool) {
	if simdGEMM {
		gemmNNSIMD(dst, a, b, k, n, lo, hi, accum)
		return
	}
	gemmNNGo(dst, a, b, k, n, lo, hi, accum)
}

func gemmTA(dst, a, b []float64, k, m, n, lo, hi int, accum bool) {
	if simdGEMM {
		gemmTASIMD(dst, a, b, k, m, n, lo, hi, accum)
		return
	}
	gemmTAGo(dst, a, b, k, m, n, lo, hi, accum)
}

func gemmTB(dst, a, b []float64, k, n, lo, hi int, accum bool) {
	if simdGEMM {
		gemmTBSIMD(dst, a, b, k, n, lo, hi, accum)
		return
	}
	gemmTBGo(dst, a, b, k, n, lo, hi, accum)
}

func checkMatMulShapes(op string, dst, a, b *Tensor, m, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		//cmfl:lint-ignore hotpathalloc panic path: the message is built only when a shape bug aborts the run
		panic("tensor: " + op + " requires 2-D operands")
	}
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want [%d %d]", op, dst.Shape, m, n))
	}
}

// MatMulInto computes dst = a(m×k) · b(k×n) without allocating. dst must be
// m×n and must not alias a or b.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	return matMulNNInto(dst, a, b, false)
}

// AddMatMul computes dst += a(m×k) · b(k×n) without allocating.
func AddMatMul(dst, a, b *Tensor) *Tensor {
	return matMulNNInto(dst, a, b, true)
}

//cmfl:hotpath
func matMulNNInto(dst, a, b *Tensor, accum bool) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	checkMatMulShapes("MatMulInto", dst, a, b, m, n)
	// Serial fast path avoids materialising the closure below (one heap
	// allocation per call — visible in allocation-free training loops).
	if effectiveParallelism(m, m*k*n) <= 1 {
		gemmNN(dst.Data, a.Data, b.Data, k, n, 0, m, accum)
		return dst
	}
	//cmfl:lint-ignore hotpathalloc parallel path: one closure per GEMM call, amortized over the m*k*n tile loop
	run(m, k, n, func(lo, hi int) {
		gemmNN(dst.Data, a.Data, b.Data, k, n, lo, hi, accum)
	})
	return dst
}

// gemmNNGo computes rows [lo,hi) of dst = a·b (+= when accum) with a 4×2
// register tile: eight accumulators live in registers across the k-loop, so
// every pair of b loads feeds eight multiply-adds.
//
//cmfl:hotpath
func gemmNNGo(dst, a, b []float64, k, n, lo, hi int, accum bool) {
	if !accum {
		zeroRange(dst, lo*n, hi*n)
	}
	i := lo
	for ; i+4 <= hi; i += 4 {
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k]
		d0 := dst[(i+0)*n : (i+0)*n+n]
		d1 := dst[(i+1)*n : (i+1)*n+n]
		d2 := dst[(i+2)*n : (i+2)*n+n]
		d3 := dst[(i+3)*n : (i+3)*n+n]
		j := 0
		for ; j+2 <= n; j += 2 {
			var s00, s01, s10, s11, s20, s21, s30, s31 float64
			idx := j
			for p := 0; p < k; p++ {
				b0, b1 := b[idx], b[idx+1]
				idx += n
				av := a0[p]
				s00 += av * b0
				s01 += av * b1
				av = a1[p]
				s10 += av * b0
				s11 += av * b1
				av = a2[p]
				s20 += av * b0
				s21 += av * b1
				av = a3[p]
				s30 += av * b0
				s31 += av * b1
			}
			d0[j] += s00
			d0[j+1] += s01
			d1[j] += s10
			d1[j+1] += s11
			d2[j] += s20
			d2[j+1] += s21
			d3[j] += s30
			d3[j+1] += s31
		}
		if j < n {
			var s0, s1, s2, s3 float64
			idx := j
			for p := 0; p < k; p++ {
				bv := b[idx]
				idx += n
				s0 += a0[p] * bv
				s1 += a1[p] * bv
				s2 += a2[p] * bv
				s3 += a3[p] * bv
			}
			d0[j] += s0
			d1[j] += s1
			d2[j] += s2
			d3[j] += s3
		}
	}
	for ; i < hi; i++ {
		arow := a[i*k : i*k+k]
		orow := dst[i*n : i*n+n]
		j := 0
		for ; j+2 <= n; j += 2 {
			var s0, s1 float64
			idx := j
			for p := 0; p < k; p++ {
				av := arow[p]
				s0 += av * b[idx]
				s1 += av * b[idx+1]
				idx += n
			}
			orow[j] += s0
			orow[j+1] += s1
		}
		if j < n {
			var s float64
			idx := j
			for p := 0; p < k; p++ {
				s += arow[p] * b[idx]
				idx += n
			}
			orow[j] += s
		}
	}
}

// MatMulTransAInto computes dst = aᵀ·b where a is k×m and b is k×n, without
// allocating. dst must be m×n and must not alias a or b.
func MatMulTransAInto(dst, a, b *Tensor) *Tensor {
	return matMulTAInto(dst, a, b, false)
}

// AddMatMulTransA computes dst += aᵀ·b — the gradient-accumulation form
// used for weight gradients (dW += xᵀ·dY).
func AddMatMulTransA(dst, a, b *Tensor) *Tensor {
	return matMulTAInto(dst, a, b, true)
}

//cmfl:hotpath
func matMulTAInto(dst, a, b *Tensor, accum bool) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d vs %d", k, k2))
	}
	checkMatMulShapes("MatMulTransAInto", dst, a, b, m, n)
	if effectiveParallelism(m, m*k*n) <= 1 {
		gemmTA(dst.Data, a.Data, b.Data, k, m, n, 0, m, accum)
		return dst
	}
	//cmfl:lint-ignore hotpathalloc parallel path: one closure per GEMM call, amortized over the m*k*n tile loop
	run(m, k, n, func(lo, hi int) {
		gemmTA(dst.Data, a.Data, b.Data, k, m, n, lo, hi, accum)
	})
	return dst
}

// gemmTAGo computes rows [lo,hi) of dst = aᵀ·b (+= when accum) with a 4×2
// register tile. Rows of dst correspond to columns of a, so the four a loads
// per k-step are consecutive in memory.
//
//cmfl:hotpath
func gemmTAGo(dst, a, b []float64, k, m, n, lo, hi int, accum bool) {
	if !accum {
		zeroRange(dst, lo*n, hi*n)
	}
	i := lo
	for ; i+4 <= hi; i += 4 {
		d0 := dst[(i+0)*n : (i+0)*n+n]
		d1 := dst[(i+1)*n : (i+1)*n+n]
		d2 := dst[(i+2)*n : (i+2)*n+n]
		d3 := dst[(i+3)*n : (i+3)*n+n]
		j := 0
		for ; j+2 <= n; j += 2 {
			var s00, s01, s10, s11, s20, s21, s30, s31 float64
			ai, bj := i, j
			for p := 0; p < k; p++ {
				a0, a1, a2, a3 := a[ai], a[ai+1], a[ai+2], a[ai+3]
				b0, b1 := b[bj], b[bj+1]
				ai += m
				bj += n
				s00 += a0 * b0
				s01 += a0 * b1
				s10 += a1 * b0
				s11 += a1 * b1
				s20 += a2 * b0
				s21 += a2 * b1
				s30 += a3 * b0
				s31 += a3 * b1
			}
			d0[j] += s00
			d0[j+1] += s01
			d1[j] += s10
			d1[j+1] += s11
			d2[j] += s20
			d2[j+1] += s21
			d3[j] += s30
			d3[j+1] += s31
		}
		if j < n {
			var s0, s1, s2, s3 float64
			ai, bj := i, j
			for p := 0; p < k; p++ {
				bv := b[bj]
				s0 += a[ai] * bv
				s1 += a[ai+1] * bv
				s2 += a[ai+2] * bv
				s3 += a[ai+3] * bv
				ai += m
				bj += n
			}
			d0[j] += s0
			d1[j] += s1
			d2[j] += s2
			d3[j] += s3
		}
	}
	for ; i < hi; i++ {
		drow := dst[i*n : i*n+n]
		j := 0
		for ; j+2 <= n; j += 2 {
			var s0, s1 float64
			ai, bj := i, j
			for p := 0; p < k; p++ {
				av := a[ai]
				s0 += av * b[bj]
				s1 += av * b[bj+1]
				ai += m
				bj += n
			}
			drow[j] += s0
			drow[j+1] += s1
		}
		if j < n {
			var s float64
			ai, bj := i, j
			for p := 0; p < k; p++ {
				s += a[ai] * b[bj]
				ai += m
				bj += n
			}
			drow[j] += s
		}
	}
}

// MatMulTransBInto computes dst = a(m×k) · bᵀ where b is n×k, without
// allocating. dst must be m×n and must not alias a or b.
func MatMulTransBInto(dst, a, b *Tensor) *Tensor {
	return matMulTBInto(dst, a, b, false)
}

// AddMatMulTransB computes dst += a·bᵀ — the accumulation form used for
// im2col weight gradients (dW += dY·colsᵀ).
func AddMatMulTransB(dst, a, b *Tensor) *Tensor {
	return matMulTBInto(dst, a, b, true)
}

//cmfl:hotpath
func matMulTBInto(dst, a, b *Tensor, accum bool) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d vs %d", k, k2))
	}
	checkMatMulShapes("MatMulTransBInto", dst, a, b, m, n)
	if effectiveParallelism(m, m*k*n) <= 1 {
		gemmTB(dst.Data, a.Data, b.Data, k, n, 0, m, accum)
		return dst
	}
	//cmfl:lint-ignore hotpathalloc parallel path: one closure per GEMM call, amortized over the m*k*n tile loop
	run(m, k, n, func(lo, hi int) {
		gemmTB(dst.Data, a.Data, b.Data, k, n, lo, hi, accum)
	})
	return dst
}

// gemmTBGo computes rows [lo,hi) of dst = a·bᵀ (+= when accum) as a 2×2 tile
// of row·row dot products. Every element follows dot2's even/odd partial-sum
// order, so results are identical whether an element lands in the tiled or
// the remainder path (and hence across parallel row splits).
//
//cmfl:hotpath
func gemmTBGo(dst, a, b []float64, k, n, lo, hi int, accum bool) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		d0 := dst[(i+0)*n : (i+0)*n+n]
		d1 := dst[(i+1)*n : (i+1)*n+n]
		j := 0
		for ; j+2 <= n; j += 2 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			var s00a, s00b, s01a, s01b, s10a, s10b, s11a, s11b float64
			p := 0
			for ; p+2 <= k; p += 2 {
				av0, av1 := a0[p], a1[p]
				bv0, bv1 := b0[p], b1[p]
				s00a += av0 * bv0
				s01a += av0 * bv1
				s10a += av1 * bv0
				s11a += av1 * bv1
				av0, av1 = a0[p+1], a1[p+1]
				bv0, bv1 = b0[p+1], b1[p+1]
				s00b += av0 * bv0
				s01b += av0 * bv1
				s10b += av1 * bv0
				s11b += av1 * bv1
			}
			s00 := s00a + s00b
			s01 := s01a + s01b
			s10 := s10a + s10b
			s11 := s11a + s11b
			if p < k {
				av0, av1 := a0[p], a1[p]
				bv0, bv1 := b0[p], b1[p]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s10 += av1 * bv0
				s11 += av1 * bv1
			}
			if accum {
				d0[j] += s00
				d0[j+1] += s01
				d1[j] += s10
				d1[j+1] += s11
			} else {
				d0[j] = s00
				d0[j+1] = s01
				d1[j] = s10
				d1[j+1] = s11
			}
		}
		if j < n {
			brow := b[j*k : j*k+k]
			s0 := dot2(a0, brow)
			s1 := dot2(a1, brow)
			if accum {
				d0[j] += s0
				d1[j] += s1
			} else {
				d0[j] = s0
				d1[j] = s1
			}
		}
	}
	for ; i < hi; i++ {
		arow := a[i*k : i*k+k]
		orow := dst[i*n : i*n+n]
		for j := 0; j < n; j++ {
			s := dot2(arow, b[j*k:j*k+k])
			if accum {
				orow[j] += s
			} else {
				orow[j] = s
			}
		}
	}
}

// axpyUnrolled computes y += alpha*x with a 4-way unrolled loop. len(x)
// must not exceed len(y); accumulation order is left-to-right, matching the
// naive loop bitwise.
//
//cmfl:hotpath
func axpyUnrolled(alpha float64, x, y []float64) {
	y = y[:len(x)]
	i := 0
	for ; i+3 < len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// dot2 returns ⟨x, y⟩ using even/odd partial sums — the exact accumulation
// order gemmTB's tiled path follows per element (reassociates relative to a
// naive loop; covered by the 1e-12 equivalence tests).
//
//cmfl:hotpath
func dot2(x, y []float64) float64 {
	y = y[:len(x)]
	var sa, sb float64
	p := 0
	for ; p+2 <= len(x); p += 2 {
		sa += x[p] * y[p]
		sb += x[p+1] * y[p+1]
	}
	s := sa + sb
	if p < len(x) {
		s += x[p] * y[p]
	}
	return s
}

//cmfl:hotpath
func zeroRange(v []float64, lo, hi int) {
	v = v[lo:hi]
	for i := range v {
		v[i] = 0
	}
}
