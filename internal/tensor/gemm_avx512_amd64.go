package tensor

import "os"

// AVX-512 dispatch for the GEMM kernels (see gemm_avx512_amd64.s). The
// assembly path is used when the CPU and OS support AVX-512F/DQ; the pure-Go
// kernels in gemm.go remain the reference and the fallback. Set CMFL_NOSIMD=1
// to force the Go path (debugging, cross-checking).

func init() {
	simdGEMM = detectAVX512() && os.Getenv("CMFL_NOSIMD") != "1"
}

//go:noescape
func gemmTile4(a *float64, aRowB, aPB uintptr, b *float64, dst *float64, lddB uintptr, k, n uintptr)

//go:noescape
func gemmTile1(a *float64, aPB uintptr, b *float64, dst *float64, k, n uintptr)

//go:noescape
func dotTB4(x, y *float64, ldyB uintptr, rows, k uintptr, out *[4]float64)

func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbvAsm() (eax, edx uint32)

func detectAVX512() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 must enable XMM, YMM, opmask and both ZMM state components.
	xeax, _ := xgetbvAsm()
	if xeax&0xe6 != 0xe6 {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx512f = 1 << 16
	const avx512dq = 1 << 17
	return ebx7&avx512f != 0 && ebx7&avx512dq != 0
}

func gemmNNSIMD(dst, a, b []float64, k, n, lo, hi int, accum bool) {
	if !accum {
		zeroRange(dst, lo*n, hi*n)
	}
	if k == 0 || n == 0 || lo >= hi {
		return
	}
	kB, nB := uintptr(k)*8, uintptr(n)*8
	i := lo
	for ; i+4 <= hi; i += 4 {
		gemmTile4(&a[i*k], kB, 8, &b[0], &dst[i*n], nB, uintptr(k), uintptr(n))
	}
	for ; i < hi; i++ {
		gemmTile1(&a[i*k], 8, &b[0], &dst[i*n], uintptr(k), uintptr(n))
	}
}

func gemmTASIMD(dst, a, b []float64, k, m, n, lo, hi int, accum bool) {
	if !accum {
		zeroRange(dst, lo*n, hi*n)
	}
	if k == 0 || n == 0 || lo >= hi {
		return
	}
	mB, nB := uintptr(m)*8, uintptr(n)*8
	i := lo
	for ; i+4 <= hi; i += 4 {
		gemmTile4(&a[i], 8, mB, &b[0], &dst[i*n], nB, uintptr(k), uintptr(n))
	}
	for ; i < hi; i++ {
		gemmTile1(&a[i], mB, &b[0], &dst[i*n], uintptr(k), uintptr(n))
	}
}

func gemmTBSIMD(dst, a, b []float64, k, n, lo, hi int, accum bool) {
	if k == 0 {
		if !accum {
			zeroRange(dst, lo*n, hi*n)
		}
		return
	}
	var out [4]float64
	kB := uintptr(k) * 8
	for i := lo; i < hi; i++ {
		arow := a[i*k : i*k+k]
		orow := dst[i*n : i*n+n]
		for j := 0; j < n; j += 4 {
			rows := n - j
			if rows > 4 {
				rows = 4
			}
			dotTB4(&arow[0], &b[j*k], kB, uintptr(rows), uintptr(k), &out)
			if accum {
				for c := 0; c < rows; c++ {
					orow[j+c] += out[c]
				}
			} else {
				for c := 0; c < rows; c++ {
					orow[j+c] = out[c]
				}
			}
		}
	}
}

//go:noescape
func axpyAVX(alpha float64, x, y *float64, n uintptr)

//go:noescape
func reluFwdAVX(dst, x *float64, n uintptr)

//go:noescape
func reluBwdAVX(dst, grad, x *float64, n uintptr)
