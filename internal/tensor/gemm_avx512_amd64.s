// AVX-512 GEMM micro-kernels. Every output element is accumulated with
// ascending-p FMA into a lane seeded from dst (NN/TransA) or reduced with a
// fixed tree (TransB), so results are independent of row-panel splits and of
// whether a row lands in the 4-row or the 1-row kernel. FMA contracts the
// multiply-add (no intermediate rounding), so results differ from the pure-Go
// kernels in the last bits; the equivalence tests bound both against the
// naive reference at 1e-12.

#include "textflag.h"

// func gemmTile4(a *float64, aRowB, aPB uintptr, b *float64, dst *float64, lddB uintptr, k, n uintptr)
//
// dst[r][j] += Σ_p a[r][p]·b[p][j] for r=0..3, j=0..n-1, where element
// a[r][p] lives at a + r·aRowB + p·aPB (byte strides — NN passes
// (aRowB=k·8, aPB=8), TransA passes (8, m·8)), b is k×n row-major and dst
// rows are lddB bytes apart. Column blocks of 8 with a masked tail.
TEXT ·gemmTile4(SB), NOSPLIT, $0-64
	MOVQ n+56(FP), R13
	MOVQ R13, SI
	SHLQ $3, SI            // SI = n*8 = b row stride in bytes
	XORQ R12, R12          // jb = current column block start

blockloop4:
	// K1 = lane mask for columns jb .. min(jb+8, n)-1
	MOVQ R13, AX
	SUBQ R12, AX
	CMPQ AX, $8
	JBE  rem4ok
	MOVQ $8, AX

rem4ok:
	MOVQ $1, DX
	MOVQ AX, CX
	SHLQ CX, DX
	DECQ DX
	KMOVW DX, K1

	// a row pointers for this block
	MOVQ a+0(FP), R8
	MOVQ aRowB+8(FP), AX
	LEAQ (R8)(AX*1), R9
	LEAQ (R9)(AX*1), R10
	LEAQ (R10)(AX*1), R11

	// b column-block pointer
	MOVQ b+24(FP), BX
	LEAQ (BX)(R12*8), BX

	// seed accumulators from dst so per-element order is seed, p=0, p=1, ...
	MOVQ dst+32(FP), DI
	LEAQ (DI)(R12*8), DI
	MOVQ lddB+40(FP), DX
	VMOVUPD.Z (DI), K1, Z0
	ADDQ DX, DI
	VMOVUPD.Z (DI), K1, Z1
	ADDQ DX, DI
	VMOVUPD.Z (DI), K1, Z2
	ADDQ DX, DI
	VMOVUPD.Z (DI), K1, Z3

	MOVQ  aPB+16(FP), DX
	MOVQ  k+48(FP), CX
	TESTQ CX, CX
	JZ    store4

inner4:
	VMOVUPD.Z (BX), K1, Z4
	VFMADD231PD.BCST (R8), Z4, Z0
	VFMADD231PD.BCST (R9), Z4, Z1
	VFMADD231PD.BCST (R10), Z4, Z2
	VFMADD231PD.BCST (R11), Z4, Z3
	ADDQ DX, R8
	ADDQ DX, R9
	ADDQ DX, R10
	ADDQ DX, R11
	ADDQ SI, BX
	DECQ CX
	JNZ  inner4

store4:
	MOVQ dst+32(FP), DI
	LEAQ (DI)(R12*8), DI
	MOVQ lddB+40(FP), DX
	VMOVUPD Z0, K1, (DI)
	ADDQ DX, DI
	VMOVUPD Z1, K1, (DI)
	ADDQ DX, DI
	VMOVUPD Z2, K1, (DI)
	ADDQ DX, DI
	VMOVUPD Z3, K1, (DI)

	ADDQ $8, R12
	CMPQ R12, R13
	JB   blockloop4
	VZEROUPPER
	RET

// func gemmTile1(a *float64, aPB uintptr, b *float64, dst *float64, k, n uintptr)
//
// Single-row variant of gemmTile4 for row remainders (and tiny-m products):
// dst[j] += Σ_p a[p·aPB]·b[p][j]. Column blocks of 16 (two masked zmm) for
// instruction-level parallelism; per-lane accumulation order is identical to
// gemmTile4's, so a row computes the same bits in either kernel.
TEXT ·gemmTile1(SB), NOSPLIT, $0-48
	MOVQ n+40(FP), R13
	MOVQ R13, SI
	SHLQ $3, SI
	XORQ R12, R12

blockloop1:
	// K1 masks columns jb..jb+7, K2 masks jb+8..jb+15
	MOVQ R13, AX
	SUBQ R12, AX
	CMPQ AX, $8
	JBE  lomask1
	MOVQ $8, AX

lomask1:
	MOVQ $1, DX
	MOVQ AX, CX
	SHLQ CX, DX
	DECQ DX
	KMOVW DX, K1
	MOVQ R13, AX
	SUBQ R12, AX
	SUBQ $8, AX
	JLE  himask0
	CMPQ AX, $8
	JBE  himask1
	MOVQ $8, AX

himask1:
	MOVQ $1, DX
	MOVQ AX, CX
	SHLQ CX, DX
	DECQ DX
	KMOVW DX, K2
	JMP  maskdone1

himask0:
	XORQ DX, DX
	KMOVW DX, K2

maskdone1:
	MOVQ a+0(FP), R8
	MOVQ b+16(FP), BX
	LEAQ (BX)(R12*8), BX
	MOVQ dst+24(FP), DI
	LEAQ (DI)(R12*8), DI
	VMOVUPD.Z (DI), K1, Z0
	VMOVUPD.Z 64(DI), K2, Z1
	MOVQ  aPB+8(FP), DX
	MOVQ  k+32(FP), CX
	TESTQ CX, CX
	JZ    store1

inner1:
	VMOVUPD.Z (BX), K1, Z4
	VMOVUPD.Z 64(BX), K2, Z5
	VBROADCASTSD (R8), Z6
	VFMADD231PD Z4, Z6, Z0
	VFMADD231PD Z5, Z6, Z1
	ADDQ DX, R8
	ADDQ SI, BX
	DECQ CX
	JNZ  inner1

store1:
	VMOVUPD Z0, K1, (DI)
	VMOVUPD Z1, K2, 64(DI)
	ADDQ $16, R12
	CMPQ R12, R13
	JB   blockloop1
	VZEROUPPER
	RET

// func dotTB4(x, y *float64, ldyB uintptr, rows, k uintptr, out *[4]float64)
//
// out[r] = ⟨x, y_r⟩ for up to four rows y_r = y + r·ldyB of length k.
// Rows beyond `rows` are clamped to the last valid row (their out entries
// are duplicates the caller ignores). Eight-lane FMA accumulators with a
// masked k-tail, reduced zmm→ymm→xmm→scalar in a fixed order.
TEXT ·dotTB4(SB), NOSPLIT, $0-48
	MOVQ x+0(FP), BX
	MOVQ y+8(FP), R8
	MOVQ ldyB+16(FP), AX
	MOVQ rows+24(FP), DX
	MOVQ R8, R9
	MOVQ R8, R10
	MOVQ R8, R11
	CMPQ DX, $2
	JB   rowsdone
	LEAQ (R8)(AX*1), R9
	MOVQ R9, R10
	MOVQ R9, R11
	CMPQ DX, $3
	JB   rowsdone
	LEAQ (R9)(AX*1), R10
	MOVQ R10, R11
	CMPQ DX, $4
	JB   rowsdone
	LEAQ (R10)(AX*1), R11

rowsdone:
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	MOVQ  k+32(FP), CX
	MOVQ  CX, DX
	SHRQ  $3, CX           // full 8-wide blocks
	ANDQ  $7, DX           // tail length
	TESTQ CX, CX
	JZ    tail

full:
	VMOVUPD (BX), Z4
	VFMADD231PD (R8), Z4, Z0
	VFMADD231PD (R9), Z4, Z1
	VFMADD231PD (R10), Z4, Z2
	VFMADD231PD (R11), Z4, Z3
	ADDQ $64, BX
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, R11
	DECQ CX
	JNZ  full

tail:
	TESTQ DX, DX
	JZ    reduce
	MOVQ  $1, AX
	MOVQ  DX, CX
	SHLQ  CX, AX
	DECQ  AX
	KMOVW AX, K1
	VMOVUPD.Z (BX), K1, Z4
	VMOVUPD.Z (R8), K1, Z5
	VFMADD231PD Z5, Z4, Z0
	VMOVUPD.Z (R9), K1, Z5
	VFMADD231PD Z5, Z4, Z1
	VMOVUPD.Z (R10), K1, Z5
	VFMADD231PD Z5, Z4, Z2
	VMOVUPD.Z (R11), K1, Z5
	VFMADD231PD Z5, Z4, Z3

reduce:
	MOVQ out+40(FP), DI
	VEXTRACTF64X4 $1, Z0, Y5
	VADDPD Y5, Y0, Y0
	VEXTRACTF128 $1, Y0, X5
	VADDPD X5, X0, X0
	VPERMILPD $1, X0, X5
	VADDSD X5, X0, X0
	VMOVSD X0, (DI)
	VEXTRACTF64X4 $1, Z1, Y5
	VADDPD Y5, Y1, Y1
	VEXTRACTF128 $1, Y1, X5
	VADDPD X5, X1, X1
	VPERMILPD $1, X1, X5
	VADDSD X5, X1, X1
	VMOVSD X1, 8(DI)
	VEXTRACTF64X4 $1, Z2, Y5
	VADDPD Y5, Y2, Y2
	VEXTRACTF128 $1, Y2, X5
	VADDPD X5, X2, X2
	VPERMILPD $1, X2, X5
	VADDSD X5, X2, X2
	VMOVSD X2, 16(DI)
	VEXTRACTF64X4 $1, Z3, Y5
	VADDPD Y5, Y3, Y3
	VEXTRACTF128 $1, Y3, X5
	VADDPD X5, X3, X3
	VPERMILPD $1, X3, X5
	VADDSD X5, X3, X3
	VMOVSD X3, 24(DI)
	VZEROUPPER
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
