package tensor

import (
	"math/rand"
	"testing"
)

// benchShapes are the GEMM shapes that dominate the reproduction workloads:
// the paper-scale MNIST CNN's two im2col convolutions, the next-word LSTM's
// fused gate products, and a large square case that exercises the parallel
// row-panel path.
var benchShapes = []struct {
	name    string
	m, k, n int
}{
	{"tiny-2x64x64", 2, 64, 64},
	{"mnist-conv1-16x25x576", 16, 25, 576},
	{"mnist-conv2-32x400x144", 32, 400, 144},
	{"lstm-gates-32x64x256", 32, 64, 256},
	{"square-256", 256, 256, 256},
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

// BenchmarkMatMul measures dst = a·b at the reproduction's hot shapes.
func BenchmarkMatMul(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(s.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := randTensor(rng, s.m, s.k)
			bb := randTensor(rng, s.k, s.n)
			dst := New(s.m, s.n)
			b.SetBytes(int64(8 * s.m * s.k * s.n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, a, bb)
			}
		})
	}
}

// BenchmarkMatMulTransA measures dst = aᵀ·b (the backward-pass weight
// gradient product).
func BenchmarkMatMulTransA(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(s.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			a := randTensor(rng, s.k, s.m)
			bb := randTensor(rng, s.k, s.n)
			dst := New(s.m, s.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulTransAInto(dst, a, bb)
			}
		})
	}
}

// BenchmarkMatMulTransB measures dst = a·bᵀ (the backward-pass input
// gradient product).
func BenchmarkMatMulTransB(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(s.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			a := randTensor(rng, s.m, s.k)
			bb := randTensor(rng, s.n, s.k)
			dst := New(s.m, s.n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulTransBInto(dst, a, bb)
			}
		})
	}
}

// BenchmarkMatMulAlloc measures the allocating wrapper, pinning the
// allocation cost the *Into variants remove from the training hot path.
func BenchmarkMatMulAlloc(b *testing.B) {
	s := benchShapes[3] // lstm-gates
	rng := rand.New(rand.NewSource(4))
	a := randTensor(rng, s.m, s.k)
	bb := randTensor(rng, s.k, s.n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(a, bb)
	}
}
