//go:build !amd64

package tensor

// Non-amd64 builds run the pure-Go kernels; simdGEMM stays false so these
// stubs are never reached.

func gemmNNSIMD(dst, a, b []float64, k, n, lo, hi int, accum bool) {
	panic("tensor: SIMD GEMM unavailable on this platform")
}

func gemmTASIMD(dst, a, b []float64, k, m, n, lo, hi int, accum bool) {
	panic("tensor: SIMD GEMM unavailable on this platform")
}

func gemmTBSIMD(dst, a, b []float64, k, n, lo, hi int, accum bool) {
	panic("tensor: SIMD GEMM unavailable on this platform")
}

func axpyAVX(alpha float64, x, y *float64, n uintptr) {
	panic("tensor: SIMD axpy unavailable on this platform")
}

func reluFwdAVX(dst, x *float64, n uintptr) {
	panic("tensor: SIMD relu unavailable on this platform")
}

func reluBwdAVX(dst, grad, x *float64, n uintptr) {
	panic("tensor: SIMD relu unavailable on this platform")
}
