package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// ---- Naive reference implementations (the seed kernels, kept verbatim as
// ground truth for the blocked/parallel rewrites) ----

func refMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a.Data[i*k+p]
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += av * b.Data[p*n+j]
			}
		}
	}
	return out
}

func refMatMulTransA(a, b *Tensor) *Tensor {
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			av := a.Data[p*m+i]
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += av * b.Data[p*n+j]
			}
		}
	}
	return out
}

func refMatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[j*k+p]
			}
			out.Data[i*n+j] = s
		}
	}
	return out
}

// maxRelDiff returns the largest |x-y| / max(1, |x|, |y|) over both tensors.
func maxRelDiff(t *testing.T, got, want *Tensor) float64 {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("length mismatch: %d vs %d", len(got.Data), len(want.Data))
	}
	var worst float64
	for i := range got.Data {
		scale := math.Max(1, math.Max(math.Abs(got.Data[i]), math.Abs(want.Data[i])))
		if d := math.Abs(got.Data[i]-want.Data[i]) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// gemmTestShapes mixes random sizes with every edge shape named in ISSUE 1:
// 1×N, N×1, K=1, batch=1, plus sizes straddling the register-tile remainders
// (rows mod 4, cols mod 2, k mod 2) and the parallelism threshold.
func gemmTestShapes(rng *rand.Rand) [][3]int {
	shapes := [][3]int{
		{1, 1, 1},
		{1, 7, 5},     // 1×N
		{5, 7, 1},     // N×1
		{4, 1, 6},     // K=1
		{1, 64, 64},   // batch=1
		{4, 8, 2},     // exact 4×2 tiles, even k
		{5, 9, 3},     // one remainder row, odd n, odd k
		{6, 31, 4},    // two remainder rows (2×2 TB tile boundary)
		{7, 240, 5},   // three remainder rows
		{64, 64, 64},  // above the parallel threshold
		{128, 97, 33}, // above the parallel threshold, ragged
		{257, 3, 129}, // many rows, small k
	}
	for i := 0; i < 12; i++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(40), 1 + rng.Intn(300), 1 + rng.Intn(40)})
	}
	return shapes
}

const gemmTol = 1e-12

// TestGEMMEquivalence pins all three blocked kernels (and their accumulate
// variants) to the naive references across random and edge shapes, at
// serial, default-parallel and forced-high parallelism.
func TestGEMMEquivalence(t *testing.T) {
	defer SetMatMulParallelism(0)
	rng := rand.New(rand.NewSource(42))
	for _, par := range []int{1, 0, 8} {
		SetMatMulParallelism(par)
		for _, s := range gemmTestShapes(rng) {
			m, k, n := s[0], s[1], s[2]
			a := randTensor(rng, m, k)
			b := randTensor(rng, k, n)
			aT := Transpose(a)
			bT := Transpose(b)

			if d := maxRelDiff(t, MatMulInto(New(m, n), a, b), refMatMul(a, b)); d > gemmTol {
				t.Errorf("par=%d MatMulInto %dx%dx%d: rel diff %g", par, m, k, n, d)
			}
			if d := maxRelDiff(t, MatMulTransAInto(New(m, n), aT, b), refMatMulTransA(aT, b)); d > gemmTol {
				t.Errorf("par=%d MatMulTransAInto %dx%dx%d: rel diff %g", par, m, k, n, d)
			}
			if d := maxRelDiff(t, MatMulTransBInto(New(m, n), a, bT), refMatMulTransB(a, bT)); d > gemmTol {
				t.Errorf("par=%d MatMulTransBInto %dx%dx%d: rel diff %g", par, m, k, n, d)
			}

			// Accumulate variants: seed dst with data, compare to ref + seed.
			seed := randTensor(rng, m, n)
			want := refMatMul(a, b)
			want.AddInPlace(seed)
			if d := maxRelDiff(t, AddMatMul(seed.Clone(), a, b), want); d > gemmTol {
				t.Errorf("par=%d AddMatMul %dx%dx%d: rel diff %g", par, m, k, n, d)
			}
			wantTA := refMatMulTransA(aT, b)
			wantTA.AddInPlace(seed)
			if d := maxRelDiff(t, AddMatMulTransA(seed.Clone(), aT, b), wantTA); d > gemmTol {
				t.Errorf("par=%d AddMatMulTransA %dx%dx%d: rel diff %g", par, m, k, n, d)
			}
			wantTB := refMatMulTransB(a, bT)
			wantTB.AddInPlace(seed)
			if d := maxRelDiff(t, AddMatMulTransB(seed.Clone(), a, bT), wantTB); d > gemmTol {
				t.Errorf("par=%d AddMatMulTransB %dx%dx%d: rel diff %g", par, m, k, n, d)
			}
		}
	}
}

// TestGEMMDeterministicAcrossParallelism asserts bitwise-identical results
// at every parallelism level: the row-panel split never changes the
// per-element accumulation order.
func TestGEMMDeterministicAcrossParallelism(t *testing.T) {
	defer SetMatMulParallelism(0)
	rng := rand.New(rand.NewSource(7))
	m, k, n := 96, 130, 70 // above the parallel threshold
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	SetMatMulParallelism(1)
	serial := MatMulInto(New(m, n), a, b)
	for _, par := range []int{2, 3, 7, 16, 0} {
		SetMatMulParallelism(par)
		got := MatMulInto(New(m, n), a, b)
		for i := range got.Data {
			if got.Data[i] != serial.Data[i] {
				t.Fatalf("par=%d element %d: %v != serial %v", par, i, got.Data[i], serial.Data[i])
			}
		}
	}
}

// TestGEMMAllocatingWrappersMatch keeps the legacy allocating API glued to
// the new kernels.
func TestGEMMAllocatingWrappersMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randTensor(rng, 9, 31)
	b := randTensor(rng, 31, 13)
	if d := maxRelDiff(t, MatMul(a, b), refMatMul(a, b)); d > gemmTol {
		t.Errorf("MatMul: rel diff %g", d)
	}
	aT := Transpose(a)
	if d := maxRelDiff(t, MatMulTransA(aT, b), refMatMulTransA(aT, b)); d > gemmTol {
		t.Errorf("MatMulTransA: rel diff %g", d)
	}
	bT := Transpose(b)
	if d := maxRelDiff(t, MatMulTransB(a, bT), refMatMulTransB(a, bT)); d > gemmTol {
		t.Errorf("MatMulTransB: rel diff %g", d)
	}
}

// TestGEMMConcurrentClients exercises the shared pool the way the FL engine
// does: many goroutines issuing large products at once. Run with -race.
func TestGEMMConcurrentClients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, k, n := 80, 120, 60
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	want := refMatMul(a, b)
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func() {
			dst := New(m, n)
			for iter := 0; iter < 20; iter++ {
				MatMulInto(dst, a, b)
			}
			for i := range dst.Data {
				if math.Abs(dst.Data[i]-want.Data[i]) > 1e-9 {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errorString("concurrent GEMM result mismatch")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestGEMMSIMDMatchesGo cross-checks the AVX-512 kernels against the pure-Go
// kernels (both already pinned to the naive references above). FMA contraction
// means the paths differ in the last bits, hence the 1e-12 bound rather than
// bitwise equality. Skipped where the SIMD path is unavailable.
func TestGEMMSIMDMatchesGo(t *testing.T) {
	if !simdGEMM {
		t.Skip("SIMD GEMM not available")
	}
	defer func() { simdGEMM = true }()
	rng := rand.New(rand.NewSource(13))
	for _, s := range gemmTestShapes(rng) {
		m, k, n := s[0], s[1], s[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		aT := Transpose(a)
		bT := Transpose(b)
		seed := randTensor(rng, m, n)

		type product struct {
			name string
			do   func() *Tensor
		}
		products := []product{
			{"NN", func() *Tensor { return MatMulInto(New(m, n), a, b) }},
			{"TA", func() *Tensor { return MatMulTransAInto(New(m, n), aT, b) }},
			{"TB", func() *Tensor { return MatMulTransBInto(New(m, n), a, bT) }},
			{"NN+", func() *Tensor { return AddMatMul(seed.Clone(), a, b) }},
			{"TA+", func() *Tensor { return AddMatMulTransA(seed.Clone(), aT, b) }},
			{"TB+", func() *Tensor { return AddMatMulTransB(seed.Clone(), a, bT) }},
		}
		for _, p := range products {
			simdGEMM = true
			fast := p.do()
			simdGEMM = false
			ref := p.do()
			if d := maxRelDiff(t, fast, ref); d > gemmTol {
				t.Errorf("%s %dx%dx%d: SIMD vs Go rel diff %g", p.name, m, k, n, d)
			}
		}
	}
	simdGEMM = true

	// Bitwise determinism across row-panel splits must also hold on the
	// SIMD path (4-row and 1-row kernels share per-lane accumulation order).
	defer SetMatMulParallelism(0)
	m, k, n := 97, 65, 43 // forces 1-row remainders at several splits
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	SetMatMulParallelism(1)
	serial := MatMulInto(New(m, n), a, b)
	for _, par := range []int{2, 3, 5, 9} {
		SetMatMulParallelism(par)
		got := MatMulInto(New(m, n), a, b)
		for i := range got.Data {
			if got.Data[i] != serial.Data[i] {
				t.Fatalf("par=%d element %d: %v != serial %v", par, i, got.Data[i], serial.Data[i])
			}
		}
	}
}
