package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The GEMM worker pool. One pool is shared by every goroutine in the
// process (all simulated FL clients included): workers are started lazily on
// the first large product, tasks are leaf computations that never submit
// nested tasks, and submission falls back to running the task inline when
// every worker is busy — so the pool can never deadlock and the total
// compute concurrency stays bounded by GOMAXPROCS even when many clients
// train at once.
//
// Determinism: parallelism only changes *who* computes a row panel, never
// the per-row accumulation order, so results are bitwise independent of the
// worker count and of MatMulParallelism.

// gemmParallelFlops is the m·k·n product above which a GEMM is split across
// the pool. Below it (e.g. the MTL linear models and quick-preset layers)
// goroutine handoff costs more than the multiply.
const gemmParallelFlops = 1 << 17

// gemmMinChunkFlops bounds the split so each row panel amortises the
// goroutine handoff (~1µs) over enough arithmetic.
const gemmMinChunkFlops = 1 << 15

var (
	poolOnce    sync.Once
	poolTasks   chan func()
	parallelism atomic.Int64 // 0 = GOMAXPROCS at first use
)

// SetMatMulParallelism bounds the number of row panels a single large GEMM
// is split into. n <= 0 restores the default (GOMAXPROCS at the time of the
// first large product). It does not resize the already-started worker pool;
// it only caps how much of it a single product uses.
func SetMatMulParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// MatMulParallelism reports the current row-panel split bound (0 means the
// GOMAXPROCS default).
func MatMulParallelism() int { return int(parallelism.Load()) }

func startPool() {
	n := runtime.GOMAXPROCS(0)
	poolTasks = make(chan func())
	// n-1 workers: the submitting goroutine always executes the last panel
	// itself, so n panels run on n OS threads.
	for i := 0; i < n-1; i++ {
		go func() {
			for task := range poolTasks {
				task()
			}
		}()
	}
}

// run executes fn over the m output rows of an (m×k)·(k×n)-shaped product,
// splitting into parallel row panels when the matrix is large enough.
func run(m, k, n int, fn func(lo, hi int)) {
	flops := m * k * n
	p := effectiveParallelism(m, flops)
	if p <= 1 {
		fn(0, m)
		return
	}
	poolOnce.Do(startPool)
	chunk := (m + p - 1) / p
	var wg sync.WaitGroup
	lo := 0
	for lo+chunk < m {
		l, h := lo, lo+chunk
		wg.Add(1)
		task := func() {
			defer wg.Done()
			fn(l, h)
		}
		select {
		case poolTasks <- task:
		default:
			// All workers busy (e.g. many FL clients multiplying at once):
			// do the panel inline rather than queueing.
			task()
		}
		lo += chunk
	}
	fn(lo, m)
	wg.Wait()
}

func effectiveParallelism(m, flops int) int {
	if flops < gemmParallelFlops || m < 2 {
		return 1
	}
	p := int(parallelism.Load())
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > m {
		p = m
	}
	if max := flops / gemmMinChunkFlops; p > max {
		p = max
	}
	return p
}
