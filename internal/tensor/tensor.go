// Package tensor implements the dense float64 linear algebra used by the
// neural-network and multi-task-learning substrates.
//
// A Tensor is a flat []float64 with a shape. The package favours explicit
// loops over cleverness: every experiment in this repository is CPU-bound on
// small models, and predictable, allocation-conscious code is easier to
// verify against the paper's equations.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float64 array with an explicit shape.
//
// The zero value is an empty tensor. Data is owned by the Tensor; use Clone
// to copy at boundaries.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zeroed tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data (not copied) in a tensor of the given shape.
// It panics if the element count does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: %d elements cannot fill shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{
		Shape: append([]int(nil), t.Shape...),
		Data:  append([]float64(nil), t.Data...),
	}
}

// Reshape returns a view with a new shape sharing the same backing data.
// It panics if the element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-index (2-D fast path).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Shape[1]+j] }

// Set assigns the element at the given 2-D index.
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Shape[1]+j] = v }

// Zero resets all elements to 0 in place.
//
//cmfl:hotpath
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// AddInPlace computes t += other elementwise. Shapes must have equal length.
//
//cmfl:hotpath
func (t *Tensor) AddInPlace(other *Tensor) {
	if len(t.Data) != len(other.Data) {
		panic(fmt.Sprintf("tensor: AddInPlace length mismatch %d vs %d", len(t.Data), len(other.Data)))
	}
	for i, v := range other.Data {
		t.Data[i] += v
	}
}

// AxpyInPlace computes t += alpha*other elementwise.
//
//cmfl:hotpath
func (t *Tensor) AxpyInPlace(alpha float64, other *Tensor) {
	if len(t.Data) != len(other.Data) {
		panic(fmt.Sprintf("tensor: AxpyInPlace length mismatch %d vs %d", len(t.Data), len(other.Data)))
	}
	Axpy(alpha, other.Data, t.Data)
}

// Scale multiplies every element by alpha in place.
//
//cmfl:hotpath
func (t *Tensor) Scale(alpha float64) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// MatMul returns a(m×k) · b(k×n) as a new m×n tensor. Hot paths should use
// MatMulInto with a reused destination instead.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMul requires 2-D operands")
	}
	return MatMulInto(New(a.Shape[0], b.Shape[1]), a, b)
}

// MatMulTransB returns a(m×k) · bᵀ where b is n×k. Hot paths should use
// MatMulTransBInto with a reused destination instead.
func MatMulTransB(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMulTransB requires 2-D operands")
	}
	return MatMulTransBInto(New(a.Shape[0], b.Shape[0]), a, b)
}

// MatMulTransA returns aᵀ · b where a is k×m and b is k×n. Hot paths should
// use MatMulTransAInto with a reused destination instead.
func MatMulTransA(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMulTransA requires 2-D operands")
	}
	return MatMulTransAInto(New(a.Shape[1], b.Shape[1]), a, b)
}

// Transpose returns the transpose of a 2-D tensor as a new tensor.
func Transpose(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic("tensor: Transpose requires a 2-D operand")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// Norm2 returns the Euclidean norm of v.
//
//cmfl:hotpath
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b.
//
//cmfl:hotpath
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// Sub returns a-b as a new slice.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// ScaleVec multiplies v by alpha in place.
//
//cmfl:hotpath
func ScaleVec(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}
