package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"cmfl/internal/xrand"
)

const eps = 1e-9

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func tensorsAlmostEqual(a, b *Tensor, tol float64) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Data {
		if !almostEqual(a.Data[i], b.Data[i], tol) {
			return false
		}
	}
	return true
}

func randomMatrix(s *xrand.Stream, m, n int) *Tensor {
	return FromSlice(s.NormVec(m*n, 0, 1), m, n)
}

func TestNewZeroed(t *testing.T) {
	a := New(3, 4)
	if a.Len() != 12 {
		t.Fatalf("Len = %d, want 12", a.Len())
	}
	for i, v := range a.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape/length mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Data[0] = 42
	if a.Data[0] != 42 {
		t.Fatal("Reshape must share backing data")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !tensorsAlmostEqual(got, want, eps) {
		t.Fatalf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	s := xrand.New(7)
	a := randomMatrix(s, 4, 4)
	got := MatMul(a, Identity(4))
	if !tensorsAlmostEqual(got, a, eps) {
		t.Fatal("A·I != A")
	}
}

func TestMatMulTransBMatchesExplicitTranspose(t *testing.T) {
	s := xrand.New(8)
	a := randomMatrix(s, 3, 5)
	b := randomMatrix(s, 4, 5)
	got := MatMulTransB(a, b)
	want := MatMul(a, Transpose(b))
	if !tensorsAlmostEqual(got, want, 1e-12) {
		t.Fatal("MatMulTransB disagrees with MatMul(a, bᵀ)")
	}
}

func TestMatMulTransAMatchesExplicitTranspose(t *testing.T) {
	s := xrand.New(9)
	a := randomMatrix(s, 5, 3)
	b := randomMatrix(s, 5, 4)
	got := MatMulTransA(a, b)
	want := MatMul(Transpose(a), b)
	if !tensorsAlmostEqual(got, want, 1e-12) {
		t.Fatal("MatMulTransA disagrees with MatMul(aᵀ, b)")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		s := xrand.New(seed)
		m, n := 1+s.Intn(6), 1+s.Intn(6)
		a := randomMatrix(s, m, n)
		return tensorsAlmostEqual(Transpose(Transpose(a)), a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		s := xrand.New(seed)
		m, k, p, n := 1+s.Intn(4), 1+s.Intn(4), 1+s.Intn(4), 1+s.Intn(4)
		a := randomMatrix(s, m, k)
		b := randomMatrix(s, k, p)
		c := randomMatrix(s, p, n)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return tensorsAlmostEqual(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAxpyInPlace(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	a.AxpyInPlace(0.5, b)
	want := []float64{6, 12, 18}
	for i := range want {
		if !almostEqual(a.Data[i], want[i], eps) {
			t.Fatalf("AxpyInPlace[%d] = %v, want %v", i, a.Data[i], want[i])
		}
	}
}

func TestNorm2AndDot(t *testing.T) {
	v := []float64{3, 4}
	if got := Norm2(v); !almostEqual(got, 5, eps) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); !almostEqual(got, 32, eps) {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestSubAndScaleVec(t *testing.T) {
	d := Sub([]float64{5, 7}, []float64{2, 3})
	if d[0] != 3 || d[1] != 4 {
		t.Fatalf("Sub = %v, want [3 4]", d)
	}
	ScaleVec(2, d)
	if d[0] != 6 || d[1] != 8 {
		t.Fatalf("ScaleVec = %v, want [6 8]", d)
	}
}

func TestCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		s := xrand.New(seed)
		n := 1 + s.Intn(20)
		a := s.NormVec(n, 0, 1)
		b := s.NormVec(n, 0, 1)
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigReconstruction(t *testing.T) {
	s := xrand.New(11)
	for trial := 0; trial < 5; trial++ {
		n := 2 + s.Intn(8)
		b := randomMatrix(s, n, n)
		a := MatMulTransB(b, b) // symmetric PSD
		w, v, err := SymEig(a)
		if err != nil {
			t.Fatalf("SymEig: %v", err)
		}
		// Reconstruct V diag(w) Vᵀ.
		scaled := New(n, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				scaled.Set(i, j, v.At(i, j)*w[j])
			}
		}
		rec := MatMulTransB(scaled, v)
		if !tensorsAlmostEqual(rec, a, 1e-7) {
			t.Fatalf("trial %d: eigendecomposition does not reconstruct input", trial)
		}
	}
}

func TestSymEigOrthonormalVectors(t *testing.T) {
	s := xrand.New(12)
	n := 6
	b := randomMatrix(s, n, n)
	a := MatMulTransB(b, b)
	_, v, err := SymEig(a)
	if err != nil {
		t.Fatalf("SymEig: %v", err)
	}
	vtv := MatMulTransA(v, v)
	if !tensorsAlmostEqual(vtv, Identity(n), 1e-8) {
		t.Fatal("eigenvector matrix is not orthonormal")
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := New(3, 3)
	a.Set(0, 0, 2)
	a.Set(1, 1, -1)
	a.Set(2, 2, 5)
	w, _, err := SymEig(a)
	if err != nil {
		t.Fatalf("SymEig: %v", err)
	}
	got := append([]float64(nil), w...)
	// Eigenvalues of a diagonal matrix are the diagonal (any order).
	want := map[float64]bool{2: false, -1: false, 5: false}
	for _, x := range got {
		for k := range want {
			if almostEqual(x, k, 1e-9) {
				want[k] = true
			}
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("eigenvalue %v missing from %v", k, got)
		}
	}
}

func TestSymEigRejectsNonSquare(t *testing.T) {
	if _, _, err := SymEig(New(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestSymSqrtSquares(t *testing.T) {
	s := xrand.New(13)
	n := 5
	b := randomMatrix(s, n, n)
	a := MatMulTransB(b, b)
	r, err := SymSqrt(a)
	if err != nil {
		t.Fatalf("SymSqrt: %v", err)
	}
	if !tensorsAlmostEqual(MatMul(r, r), a, 1e-7) {
		t.Fatal("SymSqrt(a)² != a")
	}
}

func TestTrace(t *testing.T) {
	a := FromSlice([]float64{1, 9, 9, 2}, 2, 2)
	if got := Trace(a); got != 3 {
		t.Fatalf("Trace = %v, want 3", got)
	}
}

func TestIdentityProperties(t *testing.T) {
	id := Identity(4)
	if Trace(id) != 4 {
		t.Fatal("Trace(I_4) != 4")
	}
	if !tensorsAlmostEqual(MatMul(id, id), id, 0) {
		t.Fatal("I·I != I")
	}
}
