// Package vclock is the one time abstraction shared by every engine that
// reads a clock: the TCP emulation (internal/emu) reads wall time through
// it, and the discrete-event simulation (internal/sim) substitutes a
// manually advanced virtual clock. Keeping the interface this small — a
// single Now — is deliberate: timers, sleeps and deadlines are engine
// concerns with engine-specific semantics (a real timer parks a goroutine,
// a virtual one is a heap entry), but *reading* the current instant is the
// operation both worlds share, and the one that must never leak an
// unhooked time.Now into round timing.
package vclock

import "time"

// Clock supplies the current instant. Implementations must be safe for
// concurrent use.
type Clock interface {
	Now() time.Time
}

// Wall reads the system clock — the production clock of the emulation.
type Wall struct{}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// Fixed is a settable clock for tests: Now returns whatever the last Set
// stored. The zero value returns the zero time.
type Fixed struct {
	t time.Time
}

// NewFixed returns a Fixed clock primed with t.
func NewFixed(t time.Time) *Fixed { return &Fixed{t: t} }

// Set stores the instant subsequent Now calls return. Not safe to call
// concurrently with Now; Fixed is a single-goroutine test helper.
func (f *Fixed) Set(t time.Time) { f.t = t }

// Advance moves the clock forward by d.
func (f *Fixed) Advance(d time.Duration) { f.t = f.t.Add(d) }

// Now implements Clock.
func (f *Fixed) Now() time.Time { return f.t }
