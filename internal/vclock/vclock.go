// Package vclock is the one time abstraction shared by every engine that
// reads a clock: the TCP emulation (internal/emu) reads wall time through
// it, and the discrete-event simulation (internal/sim) substitutes a
// manually advanced virtual clock. Keeping the interface this small — Now,
// plus single-shot timers for the clocks that support them — is deliberate:
// sleeps and deadlines are engine concerns with engine-specific semantics
// (a real timer parks a goroutine, a virtual one is a heap entry), but
// *reading* the current instant is the operation both worlds share, and the
// one that must never leak an unhooked time.Now into round timing. The
// wallclock analyzer (internal/lint) enforces the discipline: this package
// is the only sanctioned path from the engines to package time.
package vclock

import "time"

// Clock supplies the current instant. Implementations must be safe for
// concurrent use.
type Clock interface {
	Now() time.Time
}

// Timer is a single-shot timer: C delivers the firing instant at most once.
// The zero-duration and negative cases fire immediately, matching
// time.NewTimer.
type Timer interface {
	// C returns the delivery channel. Each Timer owns its channel; after
	// Stop reports true, nothing is ever delivered on it.
	C() <-chan time.Time
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
}

// TimerClock is a Clock that can also arm timers against its own notion of
// time. Wall implements it; Fixed deliberately does not — a virtual
// deadline is an event-heap entry (internal/sim), not a parked goroutine,
// so handing out fake timers would paper over a design error.
type TimerClock interface {
	Clock
	// NewTimer arms a single-shot timer firing once d of this clock's time
	// has elapsed.
	NewTimer(d time.Duration) Timer
}

// Wall reads the system clock — the production clock of the emulation.
type Wall struct{}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// NewTimer implements TimerClock over a real time.Timer.
func (Wall) NewTimer(d time.Duration) Timer { return wallTimer{time.NewTimer(d)} }

// wallTimer adapts *time.Timer to the Timer interface (the standard
// library's exported C field cannot satisfy an interface method directly).
type wallTimer struct{ t *time.Timer }

func (w wallTimer) C() <-chan time.Time { return w.t.C }
func (w wallTimer) Stop() bool          { return w.t.Stop() }

// Fixed is a settable clock for tests: Now returns whatever the last Set
// stored. The zero value returns the zero time.
type Fixed struct {
	t time.Time
}

// NewFixed returns a Fixed clock primed with t.
func NewFixed(t time.Time) *Fixed { return &Fixed{t: t} }

// Set stores the instant subsequent Now calls return. Not safe to call
// concurrently with Now; Fixed is a single-goroutine test helper.
func (f *Fixed) Set(t time.Time) { f.t = t }

// Advance moves the clock forward by d.
func (f *Fixed) Advance(d time.Duration) { f.t = f.t.Add(d) }

// Now implements Clock.
func (f *Fixed) Now() time.Time { return f.t }
