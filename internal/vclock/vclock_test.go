package vclock

import (
	"testing"
	"time"
)

func TestWallTracksSystemClock(t *testing.T) {
	before := time.Now()
	got := Wall{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Wall.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestFixed(t *testing.T) {
	base := time.Unix(1000, 0)
	f := NewFixed(base)
	if !f.Now().Equal(base) {
		t.Fatalf("Now = %v, want %v", f.Now(), base)
	}
	f.Advance(3 * time.Second)
	if want := base.Add(3 * time.Second); !f.Now().Equal(want) {
		t.Fatalf("after Advance Now = %v, want %v", f.Now(), want)
	}
	f.Set(base)
	if !f.Now().Equal(base) {
		t.Fatalf("after Set Now = %v, want %v", f.Now(), base)
	}
	var zero Fixed
	if !zero.Now().IsZero() {
		t.Fatalf("zero Fixed Now = %v, want zero time", zero.Now())
	}
}
