package vclock

import (
	"testing"
	"time"
)

func TestWallTracksSystemClock(t *testing.T) {
	before := time.Now()
	got := Wall{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Wall.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestFixed(t *testing.T) {
	base := time.Unix(1000, 0)
	f := NewFixed(base)
	if !f.Now().Equal(base) {
		t.Fatalf("Now = %v, want %v", f.Now(), base)
	}
	f.Advance(3 * time.Second)
	if want := base.Add(3 * time.Second); !f.Now().Equal(want) {
		t.Fatalf("after Advance Now = %v, want %v", f.Now(), want)
	}
	f.Set(base)
	if !f.Now().Equal(base) {
		t.Fatalf("after Set Now = %v, want %v", f.Now(), base)
	}
	var zero Fixed
	if !zero.Now().IsZero() {
		t.Fatalf("zero Fixed Now = %v, want zero time", zero.Now())
	}
}

func TestWallTimerFires(t *testing.T) {
	timer := Wall{}.NewTimer(time.Millisecond)
	select {
	case fired := <-timer.C():
		if fired.IsZero() {
			t.Fatal("timer delivered the zero time")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wall timer never fired")
	}
	if timer.Stop() {
		t.Fatal("Stop after delivery reported the timer as still pending")
	}
}

func TestWallTimerStop(t *testing.T) {
	timer := Wall{}.NewTimer(time.Hour)
	if !timer.Stop() {
		t.Fatal("Stop before firing reported the timer as already spent")
	}
	select {
	case <-timer.C():
		t.Fatal("stopped timer delivered a value")
	default:
	}
}

// TestFixedIsNotATimerClock pins the design decision: virtual deadlines are
// event-heap entries, so the test clock must not satisfy TimerClock and
// silently absorb timer construction.
func TestFixedIsNotATimerClock(t *testing.T) {
	var c Clock = NewFixed(time.Unix(0, 0))
	if _, ok := c.(TimerClock); ok {
		t.Fatal("*Fixed implements TimerClock; virtual deadlines must stay event-driven")
	}
	if _, ok := any(Wall{}).(TimerClock); !ok {
		t.Fatal("Wall does not implement TimerClock")
	}
}
