// Package xrand provides deterministic, splittable pseudo-random streams.
//
// Federated experiments need many independent random streams (one per
// client, per dataset, per round) that are reproducible from a single
// experiment seed. xrand derives child streams by hashing a (seed, purpose,
// id) triple with FNV-1a, so streams are stable across runs and independent
// of creation order.
package xrand

import (
	"hash/fnv"
	"math/rand"
)

// Stream is a deterministic source of pseudo-random values.
//
// A Stream wraps math/rand with convenience methods used across the
// repository (Gaussian draws, permutations, categorical sampling). It is not
// safe for concurrent use; derive one Stream per goroutine.
type Stream struct {
	rng *rand.Rand
}

// New returns a Stream seeded directly with seed.
func New(seed int64) *Stream {
	return &Stream{rng: rand.New(rand.NewSource(seed))}
}

// Derive returns a child Stream keyed by (seed, purpose, id).
//
// Two Derive calls with equal arguments yield identical streams; changing
// any argument yields a statistically independent stream.
func Derive(seed int64, purpose string, id int) *Stream {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(purpose))
	putUint64(buf[:], uint64(id))
	h.Write(buf[:])
	return New(int64(h.Sum64()))
}

// DeriveCompact returns a child Stream keyed by (seed, purpose, id) like
// Derive, but backed by a splitmix64 generator whose state is a single
// uint64 instead of math/rand's ~5 KB lagged-Fibonacci table. Use it when
// a population holds one stream per client — a million-client simulation
// pays 8 bytes per client instead of 5 GB — and Derive when bit-compat
// with existing Derive-seeded experiments matters. The two constructors
// yield different sequences for equal arguments by design.
func DeriveCompact(seed int64, purpose string, id int) *Stream {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(purpose))
	putUint64(buf[:], uint64(id))
	h.Write(buf[:])
	return &Stream{rng: rand.New(&splitmix64{state: h.Sum64()})}
}

// splitmix64 is Steele et al.'s SplitMix generator: 8 bytes of state, full
// 2^64 period, passes BigCrush. It implements rand.Source64 so math/rand
// draws whole words instead of pairing Int63s.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (s *Stream) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (s *Stream) Int63() int64 { return s.rng.Int63() }

// Norm returns a standard normal draw.
func (s *Stream) Norm() float64 { return s.rng.NormFloat64() }

// NormVec fills a fresh slice of length n with N(mu, sigma^2) draws.
func (s *Stream) NormVec(n int, mu, sigma float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = mu + sigma*s.rng.NormFloat64()
	}
	return v
}

// UniformVec fills a fresh slice of length n with U[lo, hi) draws.
func (s *Stream) UniformVec(n int, lo, hi float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = lo + (hi-lo)*s.rng.Float64()
	}
	return v
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Categorical samples an index proportionally to the non-negative weights.
// A zero-sum weight vector falls back to the uniform distribution.
func (s *Stream) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return s.rng.Intn(len(weights))
	}
	r := s.rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}
