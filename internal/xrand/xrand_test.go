package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeriveDeterministic(t *testing.T) {
	a := Derive(42, "client", 7)
	b := Derive(42, "client", 7)
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d: streams diverged: %v vs %v", i, x, y)
		}
	}
}

func TestDeriveIndependentByID(t *testing.T) {
	a := Derive(42, "client", 0)
	b := Derive(42, "client", 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different ids produced %d/64 identical draws", same)
	}
}

func TestDeriveIndependentByPurpose(t *testing.T) {
	a := Derive(42, "data", 0)
	b := Derive(42, "init", 0)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different purposes produced %d/64 identical draws", same)
	}
}

func TestDeriveCompactDeterministic(t *testing.T) {
	a := DeriveCompact(42, "client", 7)
	b := DeriveCompact(42, "client", 7)
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d: compact streams diverged: %v vs %v", i, x, y)
		}
	}
}

func TestDeriveCompactIndependence(t *testing.T) {
	pairs := []struct {
		name string
		a, b *Stream
	}{
		{"by id", DeriveCompact(42, "client", 0), DeriveCompact(42, "client", 1)},
		{"by purpose", DeriveCompact(42, "data", 0), DeriveCompact(42, "init", 0)},
		{"by seed", DeriveCompact(42, "client", 0), DeriveCompact(43, "client", 0)},
		{"from Derive", DeriveCompact(42, "client", 0), Derive(42, "client", 0)},
	}
	for _, p := range pairs {
		same := 0
		for i := 0; i < 64; i++ {
			if p.a.Float64() == p.b.Float64() {
				same++
			}
		}
		if same > 2 {
			t.Fatalf("%s: streams produced %d/64 identical draws", p.name, same)
		}
	}
}

func TestDeriveCompactMoments(t *testing.T) {
	// The compact generator must be a usable uniform source, not just
	// deterministic: check first and second moments of Float64.
	s := DeriveCompact(7, "moments", 0)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		x := s.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("draw %d = %v outside [0,1)", i, x)
		}
		sum += x
		sq += x * x
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	if v := sq/n - mean*mean; math.Abs(v-1.0/12) > 0.005 {
		t.Errorf("variance = %v, want ~1/12", v)
	}
}

func TestSplitmix64KnownVectors(t *testing.T) {
	// Reference outputs for state=1234567 from the SplitMix64 definition
	// (Steele et al.); pins the constants against typos.
	s := &splitmix64{state: 1234567}
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestNormVecMoments(t *testing.T) {
	s := New(1)
	const n = 200000
	v := s.NormVec(n, 3.0, 2.0)
	var sum, sq float64
	for _, x := range v {
		sum += x
	}
	mean := sum / n
	for _, x := range v {
		sq += (x - mean) * (x - mean)
	}
	std := math.Sqrt(sq / n)
	if math.Abs(mean-3.0) > 0.05 {
		t.Errorf("mean = %v, want ~3.0", mean)
	}
	if math.Abs(std-2.0) > 0.05 {
		t.Errorf("std = %v, want ~2.0", std)
	}
}

func TestUniformVecRange(t *testing.T) {
	s := New(2)
	v := s.UniformVec(1000, -1.5, 2.5)
	for i, x := range v {
		if x < -1.5 || x >= 2.5 {
			t.Fatalf("element %d = %v outside [-1.5, 2.5)", i, x)
		}
	}
}

func TestCategoricalRespectsWeights(t *testing.T) {
	s := New(3)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[s.Categorical(w)]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("category ratio = %v, want ~3", ratio)
	}
}

func TestCategoricalZeroSumFallsBackToUniform(t *testing.T) {
	s := New(4)
	w := []float64{0, 0, 0, 0}
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[s.Categorical(w)]++
	}
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("category %d sampled %d/4000 times, want ~1000", i, c)
		}
	}
}

func TestCategoricalNegativeWeightsIgnored(t *testing.T) {
	s := New(5)
	w := []float64{-5, 1, -2}
	for i := 0; i < 1000; i++ {
		if got := s.Categorical(w); got != 1 {
			t.Fatalf("Categorical picked index %d with negative weight", got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, x := range p {
			if x < 0 || x >= n || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveDiffersFromOtherSeeds(t *testing.T) {
	f := func(seed int64) bool {
		a := Derive(seed, "x", 0)
		b := Derive(seed+1, "x", 0)
		// At least one of the first 8 draws must differ.
		for i := 0; i < 8; i++ {
			if a.Float64() != b.Float64() {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDeriveCompactCrossCorrelation strengthens the independence claim
// beyond "draws rarely collide": adjacent-id and adjacent-seed compact
// streams must be statistically uncorrelated, not merely unequal, or a
// million-client population would carry hidden structure between
// neighbouring clients.
func TestDeriveCompactCrossCorrelation(t *testing.T) {
	pairs := []struct {
		name string
		a, b *Stream
	}{
		{"adjacent ids", DeriveCompact(1, "client", 1000), DeriveCompact(1, "client", 1001)},
		{"adjacent seeds", DeriveCompact(7, "client", 0), DeriveCompact(8, "client", 0)},
		{"prefix purposes", DeriveCompact(7, "cli", 0), DeriveCompact(7, "client", 0)},
	}
	const n = 20000
	for _, p := range pairs {
		var sa, sb, saa, sbb, sab float64
		for i := 0; i < n; i++ {
			x, y := p.a.Float64(), p.b.Float64()
			sa += x
			sb += y
			saa += x * x
			sbb += y * y
			sab += x * y
		}
		cov := sab/n - (sa/n)*(sb/n)
		va := saa/n - (sa/n)*(sa/n)
		vb := sbb/n - (sb/n)*(sb/n)
		if r := cov / math.Sqrt(va*vb); math.Abs(r) > 0.03 {
			t.Errorf("%s: correlation = %v, want |r| < 0.03", p.name, r)
		}
	}
}
