#!/usr/bin/env bash
# bench-update.sh — promote benchmarks/latest.txt to the committed baseline.
# Run scripts/bench.sh first, review the numbers, then run this and commit
# benchmarks/baseline.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ ! -f benchmarks/latest.txt ]]; then
    echo "benchmarks/latest.txt not found — run scripts/bench.sh first" >&2
    exit 1
fi
cp benchmarks/latest.txt benchmarks/baseline.txt
echo "promoted benchmarks/latest.txt -> benchmarks/baseline.txt"
