#!/usr/bin/env bash
# bench.sh — run the hot-path benchmark suite and gate on regressions.
#
# Runs `go test -bench` over the compute-substrate packages, writes the
# results to benchmarks/latest.txt, and — when a committed
# benchmarks/baseline.txt exists — fails if any benchmark's ns/op regressed
# by more than BENCH_MAX_REGRESSION_PCT percent (default 10).
#
# Usage:
#   scripts/bench.sh                         # run + compare against baseline
#   BENCH_MAX_REGRESSION_PCT=25 scripts/bench.sh
#   BENCH_PKGS="./internal/tensor" scripts/bench.sh
#   scripts/bench-update.sh                  # promote latest.txt to baseline.txt
#
# Notes:
# - Comparison is name-by-name on ns/op; benchmarks present in only one of
#   the two files are reported but never fail the gate (so adding or
#   removing a benchmark does not require touching the baseline first).
# - Benchmark numbers are only comparable on similar hardware. CI runners
#   are noisy; keep the threshold loose there and tighten it locally.

set -euo pipefail
cd "$(dirname "$0")/.."

PKGS=${BENCH_PKGS:-"./internal/tensor ./internal/nn ./internal/fl ./internal/compress ./internal/emu/shard ./internal/sim"}
MAX_PCT=${BENCH_MAX_REGRESSION_PCT:-10}
BENCH_RE=${BENCH_RE:-.}
OUT=benchmarks/latest.txt
BASE=benchmarks/baseline.txt

mkdir -p benchmarks

echo "running: go test -run '^$' -bench '$BENCH_RE' -benchmem $PKGS"
# shellcheck disable=SC2086
go test -run '^$' -bench "$BENCH_RE" -benchmem $PKGS | tee "$OUT.tmp"
grep -E '^Benchmark' "$OUT.tmp" > "$OUT" || {
    echo "bench.sh: no benchmark lines produced" >&2
    rm -f "$OUT.tmp"
    exit 1
}
rm -f "$OUT.tmp"
echo
echo "wrote $OUT ($(wc -l < "$OUT") benchmarks)"

if [[ ! -f "$BASE" ]]; then
    echo "no $BASE — skipping regression check."
    echo "promote this run with: scripts/bench-update.sh"
    exit 0
fi

echo "comparing against $BASE (fail above ${MAX_PCT}% ns/op regression)"
awk -v max="$MAX_PCT" '
    # Benchmark lines look like:
    #   BenchmarkName/case-8   123   45678 ns/op   90 B/op   1 allocs/op
    # $1 is the name (GOMAXPROCS suffix included), and "ns/op" follows its value.
    function nsop(line,    n, f, i) {
        n = split(line, f)
        for (i = 2; i <= n; i++) if (f[i] == "ns/op") return f[i-1] + 0
        return -1
    }
    NR == FNR { if (/^Benchmark/) base[$1] = nsop($0); next }
    /^Benchmark/ {
        cur = nsop($0)
        if (!($1 in base)) { printf "  new       %-55s %12.0f ns/op\n", $1, cur; next }
        old = base[$1]; seen[$1] = 1
        if (old <= 0 || cur < 0) next
        pct = 100 * (cur - old) / old
        mark = "ok"
        if (pct > max) { mark = "FAIL"; failed++ }
        printf "  %-9s %-55s %12.0f -> %12.0f ns/op  %+7.1f%%\n", mark, $1, old, cur, pct
    }
    END {
        for (b in base) if (!(b in seen)) printf "  removed   %s\n", b
        if (failed) {
            printf "\n%d benchmark(s) regressed more than %s%%\n", failed, max
            exit 1
        }
        print "\nall benchmarks within threshold"
    }
' "$BASE" "$OUT"
