#!/usr/bin/env bash
# lint.sh — run the full static-analysis gate locally, exactly as CI does.
#
# Three layers, cheapest first:
#   1. gofmt      — formatting drift,
#   2. go vet     — the stock toolchain checks,
#   3. cmfl-vet   — this repo's own analyzer suite (internal/lint): hot-path
#                   allocation freedom (transitively, via the call graph),
#                   deterministic aggregation order, the cmfl_* metric
#                   schema, discarded errors, float equality, goroutine and
#                   mutex discipline, and seed-provenance taint.
#
# Usage:
#   scripts/lint.sh                  # whole module
#   scripts/lint.sh ./internal/fl    # restrict cmfl-vet to some packages
#
# cmfl-vet exits 1 on findings or a blown suppression budget, 2 on load
# errors; pass -json through `go run ./cmd/cmfl-vet -json ./...` when you
# want the machine-readable findings document instead. Results are cached
# under .cmflvet-cache/, so the second run is near-instant; -stats below
# shows the hit rate and per-analyzer wall time.

set -euo pipefail
cd "$(dirname "$0")/.."

PKGS=("${@:-./...}")

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needs to be run on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet "${PKGS[@]}"

echo "== cmfl-vet"
go run ./cmd/cmfl-vet -stats -budget benchmarks/lint_budget.json "${PKGS[@]}"
