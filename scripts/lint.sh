#!/usr/bin/env bash
# lint.sh — run the full static-analysis gate locally, exactly as CI does.
#
# Three layers, cheapest first:
#   1. gofmt      — formatting drift,
#   2. go vet     — the stock toolchain checks,
#   3. cmfl-vet   — this repo's own analyzer suite (internal/lint): hot-path
#                   allocation freedom (transitively, via the call graph),
#                   deterministic aggregation order, the cmfl_* metric
#                   schema, discarded errors, float equality, goroutine and
#                   mutex discipline, seed-provenance taint, wire-protocol
#                   duality, lock-order acyclicity, enum exhaustiveness,
#                   and the exported-API baseline.
#
# Usage:
#   scripts/lint.sh                  # whole module
#   scripts/lint.sh --diff           # only packages affected by changes
#                                    #   vs. the merge base with origin/main
#                                    #   (falls back to HEAD); pre-commit mode
#   scripts/lint.sh ./internal/fl    # restrict cmfl-vet to some packages
#
# To run the --diff gate automatically before every commit:
#   git config core.hooksPath .githooks
#
# cmfl-vet exits 1 on findings or a blown suppression budget, 2 on load
# errors; pass -json through `go run ./cmd/cmfl-vet -json ./...` when you
# want the machine-readable findings document instead. Results are cached
# under .cmflvet-cache/ (.cmflvet-cache-diff/ for --diff runs), so the
# second run is near-instant; -stats below shows the hit rate and
# per-analyzer wall time.

set -euo pipefail
cd "$(dirname "$0")/.."

DIFF_ARGS=()
if [[ "${1:-}" == "--diff" ]]; then
    shift
    ref=$(git merge-base origin/main HEAD 2>/dev/null || echo HEAD)
    DIFF_ARGS=(-diff "$ref")
fi

PKGS=("${@:-./...}")

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needs to be run on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet "${PKGS[@]}"

echo "== cmfl-vet"
go run ./cmd/cmfl-vet -stats -budget benchmarks/lint_budget.json ${DIFF_ARGS[@]+"${DIFF_ARGS[@]}"} "${PKGS[@]}"
